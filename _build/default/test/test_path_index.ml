open Gql_graph
open Gql_index

let compounds = lazy (Array.of_list (Gql_datasets.Chem.generate ~n_compounds:120 ()))

let test_features () =
  (* path A-B: features A, B, A/B *)
  let g = Graph.of_labeled ~labels:[| "A"; "B" |] [ (0, 1) ] in
  let fs = Path_index.features_of_graph ~max_len:2 g in
  Alcotest.(check (list (pair string int)))
    "features of an edge"
    [ ("A", 1); ("A/B", 1); ("B", 1) ]
    fs

let test_feature_counts () =
  (* star A(-B)(-B): B appears twice, A/B twice *)
  let g = Graph.of_labeled ~labels:[| "A"; "B"; "B" |] [ (0, 1); (0, 2) ] in
  let fs = Path_index.features_of_graph ~max_len:1 g in
  Alcotest.(check (list (pair string int)))
    "multiplicities"
    [ ("A", 1); ("A/B", 2); ("B", 2) ]
    fs

let test_triangle_paths () =
  let g = Graph.of_labeled ~labels:[| "A"; "B"; "C" |] [ (0, 1); (1, 2); (2, 0) ] in
  let fs = Path_index.features_of_graph ~max_len:2 g in
  (* 3 nodes, 3 edges, 3 two-edge paths *)
  Alcotest.(check int) "feature kinds" 9 (List.length fs);
  Alcotest.(check int) "total paths" 9
    (List.fold_left (fun a (_, c) -> a + c) 0 fs)

let test_filter_soundness () =
  let graphs = Lazy.force compounds in
  let idx = Path_index.build ~max_len:3 graphs in
  let pattern =
    (Gql_datasets.Chem.benzene_like () : Graph.t)
  in
  let cands = Path_index.candidates idx pattern in
  (* every graph actually containing the pattern must be a candidate *)
  let p = Gql_matcher.Flat_pattern.of_graph pattern in
  Array.iteri
    (fun id g ->
      if Gql_matcher.Engine.count_matches ~limit:1 p g > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "true match %d survives filtering" id)
          true (List.mem id cands))
    graphs

let test_filter_prunes () =
  let graphs = Lazy.force compounds in
  let idx = Path_index.build ~max_len:3 graphs in
  (* an implausible pattern: a path of four sulfurs *)
  let pattern = Graph.of_labeled ~labels:[| "S"; "S"; "S"; "S" |] [ (0, 1); (1, 2); (2, 3) ] in
  let ratio = Path_index.filter_ratio idx pattern in
  Alcotest.(check bool) "filters most graphs" true (ratio < 0.5)

let test_wildcards_not_filtered () =
  let graphs = Lazy.force compounds in
  let idx = Path_index.build ~max_len:2 graphs in
  let pattern = Graph.of_edges ~n:2 [ (0, 1) ] in
  (* unlabeled pattern: no features, no filtering *)
  Alcotest.(check int) "all graphs candidates"
    (Array.length graphs)
    (List.length (Path_index.candidates idx pattern))

let prop_filter_sound =
  QCheck.Test.make ~name:"path-index filtering never drops a containing graph"
    ~count:60
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 10) (Test_matcher.gen_labeled_graph ~max_n:7))
           (Test_matcher.gen_labeled_graph ~max_n:3)))
    (fun (graphs, pg) ->
      let graphs = Array.of_list graphs in
      let idx = Path_index.build ~max_len:2 graphs in
      let cands = Path_index.candidates idx pg in
      let p = Gql_matcher.Flat_pattern.of_graph pg in
      Array.for_all Fun.id
        (Array.mapi
           (fun id g ->
             Gql_matcher.Engine.count_matches ~limit:1 p g = 0 || List.mem id cands)
           graphs))

let suite =
  [
    Alcotest.test_case "path features" `Quick test_features;
    Alcotest.test_case "feature multiplicities" `Quick test_feature_counts;
    Alcotest.test_case "triangle paths" `Quick test_triangle_paths;
    Alcotest.test_case "filtering is sound on compounds" `Quick test_filter_soundness;
    Alcotest.test_case "filtering prunes" `Quick test_filter_prunes;
    Alcotest.test_case "wildcard patterns skip filtering" `Quick
      test_wildcards_not_filtered;
    QCheck_alcotest.to_alcotest prop_filter_sound;
  ]
