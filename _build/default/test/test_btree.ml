module Itree = Gql_index.Btree.Make (Int)
module Imap = Map.Make (Int)

let bindings t = List.of_seq (Itree.to_seq t)

let test_empty () =
  let t = Itree.empty () in
  Alcotest.(check bool) "is_empty" true (Itree.is_empty t);
  Alcotest.(check int) "cardinal" 0 (Itree.cardinal t);
  Alcotest.(check (option int)) "find" None (Itree.find 3 t);
  Alcotest.(check bool) "invariants" true (Itree.invariants_ok t)

let test_insert_find () =
  let t = List.fold_left (fun t k -> Itree.add k (k * 10) t) (Itree.empty ()) [ 5; 1; 9; 3; 7 ] in
  Alcotest.(check int) "cardinal" 5 (Itree.cardinal t);
  Alcotest.(check (option int)) "find 3" (Some 30) (Itree.find 3 t);
  Alcotest.(check (option int)) "find 9" (Some 90) (Itree.find 9 t);
  Alcotest.(check (option int)) "find missing" None (Itree.find 4 t)

let test_replace () =
  let t = Itree.add 1 10 (Itree.add 1 99 (Itree.empty ())) in
  Alcotest.(check int) "no duplicate key" 1 (Itree.cardinal t);
  Alcotest.(check (option int)) "replaced" (Some 10) (Itree.find 1 t)

let test_sorted_iteration () =
  let keys = [ 42; 7; 13; 99; 1; 56; 28 ] in
  let t = List.fold_left (fun t k -> Itree.add k k t) (Itree.empty ()) keys in
  Alcotest.(check (list int)) "ascending"
    (List.sort compare keys)
    (List.map fst (bindings t))

let test_deep_tree () =
  (* small degree to force many levels *)
  let t = ref (Itree.empty ~degree:2 ()) in
  for k = 0 to 999 do
    t := Itree.add (k * 7 mod 1000) k !t
  done;
  Alcotest.(check int) "cardinal" 1000 (Itree.cardinal !t);
  Alcotest.(check bool) "invariants" true (Itree.invariants_ok !t);
  Alcotest.(check bool) "height > 2" true (Itree.height !t > 2)

let test_delete () =
  let t = ref (Itree.empty ~degree:2 ()) in
  for k = 0 to 99 do
    t := Itree.add k k !t
  done;
  for k = 0 to 99 do
    if k mod 3 = 0 then t := Itree.remove k !t
  done;
  Alcotest.(check int) "cardinal after deletes" 66 (Itree.cardinal !t);
  Alcotest.(check bool) "invariants after deletes" true (Itree.invariants_ok !t);
  Alcotest.(check (option int)) "deleted gone" None (Itree.find 33 !t);
  Alcotest.(check (option int)) "survivor present" (Some 34) (Itree.find 34 !t)

let test_delete_all () =
  let t = ref (Itree.empty ~degree:2 ()) in
  for k = 0 to 49 do
    t := Itree.add k k !t
  done;
  for k = 0 to 49 do
    t := Itree.remove k !t
  done;
  Alcotest.(check bool) "empty again" true (Itree.is_empty !t);
  Alcotest.(check bool) "invariants" true (Itree.invariants_ok !t)

let test_remove_absent () =
  let t = Itree.add 1 1 (Itree.empty ()) in
  let t' = Itree.remove 99 t in
  Alcotest.(check int) "unchanged" 1 (Itree.cardinal t')

let test_min_max () =
  let t = List.fold_left (fun t k -> Itree.add k k t) (Itree.empty ()) [ 5; 2; 8 ] in
  Alcotest.(check (option (pair int int))) "min" (Some (2, 2)) (Itree.min_binding_opt t);
  Alcotest.(check (option (pair int int))) "max" (Some (8, 8)) (Itree.max_binding_opt t)

let test_range () =
  let t = ref (Itree.empty ~degree:2 ()) in
  for k = 0 to 100 do
    t := Itree.add k k !t
  done;
  let got lo hi = Itree.range ~lo ~hi !t |> Seq.map fst |> List.of_seq in
  Alcotest.(check (list int)) "inclusive range"
    [ 10; 11; 12 ]
    (got (Itree.Key_incl 10) (Itree.Key_incl 12));
  Alcotest.(check (list int)) "exclusive bounds" [ 11 ]
    (got (Itree.Key_excl 10) (Itree.Key_excl 12));
  Alcotest.(check (list int)) "open low"
    [ 0; 1; 2 ]
    (got Itree.Key_unbounded (Itree.Key_incl 2));
  Alcotest.(check (list int)) "open high"
    [ 99; 100 ]
    (got (Itree.Key_incl 99) Itree.Key_unbounded);
  Alcotest.(check (list int)) "empty range" [] (got (Itree.Key_incl 50) (Itree.Key_excl 50))

let test_update () =
  let t = Itree.add 1 10 (Itree.empty ()) in
  let t = Itree.update 1 (Option.map (fun v -> v + 1)) t in
  Alcotest.(check (option int)) "bumped" (Some 11) (Itree.find 1 t);
  let t = Itree.update 1 (fun _ -> None) t in
  Alcotest.(check (option int)) "dropped" None (Itree.find 1 t);
  let t = Itree.update 2 (fun _ -> Some 20) t in
  Alcotest.(check (option int)) "created" (Some 20) (Itree.find 2 t)

let test_persistence () =
  let t1 = Itree.of_list (List.init 50 (fun i -> (i, i))) in
  let t2 = Itree.remove 25 t1 in
  let t3 = Itree.add 100 100 t1 in
  Alcotest.(check (option int)) "t1 still has 25" (Some 25) (Itree.find 25 t1);
  Alcotest.(check (option int)) "t2 lost 25" None (Itree.find 25 t2);
  Alcotest.(check (option int)) "t1 lacks 100" None (Itree.find 100 t1);
  Alcotest.(check (option int)) "t3 has 100" (Some 100) (Itree.find 100 t3)

(* property: a btree with random ops behaves like Map, keeps invariants *)
let prop_model =
  QCheck.Test.make ~name:"btree matches Map under random add/remove" ~count:200
    QCheck.(
      pair (int_range 2 5)
        (list (pair bool (int_range 0 60))))
    (fun (degree, ops) ->
      let t, m =
        List.fold_left
          (fun (t, m) (is_add, k) ->
            if is_add then (Itree.add k (k * 2) t, Imap.add k (k * 2) m)
            else (Itree.remove k t, Imap.remove k m))
          (Itree.empty ~degree (), Imap.empty)
          ops
      in
      Itree.invariants_ok t
      && Itree.cardinal t = Imap.cardinal m
      && List.equal ( = ) (bindings t) (Imap.bindings m))

let prop_range =
  QCheck.Test.make ~name:"btree range agrees with filtered bindings" ~count:200
    QCheck.(triple (list (int_range 0 100)) (int_range 0 100) (int_range 0 100))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = List.fold_left (fun t k -> Itree.add k k t) (Itree.empty ~degree:2 ()) keys in
      let expected =
        bindings t |> List.filter (fun (k, _) -> k >= lo && k <= hi) |> List.map fst
      in
      let got =
        Itree.range ~lo:(Itree.Key_incl lo) ~hi:(Itree.Key_incl hi) t
        |> Seq.map fst |> List.of_seq
      in
      got = expected)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert and find" `Quick test_insert_find;
    Alcotest.test_case "replace semantics" `Quick test_replace;
    Alcotest.test_case "sorted iteration" `Quick test_sorted_iteration;
    Alcotest.test_case "deep tree invariants" `Quick test_deep_tree;
    Alcotest.test_case "deletion" `Quick test_delete;
    Alcotest.test_case "delete everything" `Quick test_delete_all;
    Alcotest.test_case "remove absent key" `Quick test_remove_absent;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "range scans" `Quick test_range;
    Alcotest.test_case "update" `Quick test_update;
    Alcotest.test_case "persistence" `Quick test_persistence;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_range;
  ]
