open Gql_graph

let tup = Alcotest.testable Tuple.pp Tuple.equal
let v = Alcotest.testable Value.pp Value.equal

let mk ?tag attrs = Tuple.make ?tag attrs

let test_basic () =
  let t = mk ~tag:"author" [ ("name", Value.Str "A"); ("year", Value.Int 2006) ] in
  Alcotest.(check (option string)) "tag" (Some "author") (Tuple.tag t);
  Alcotest.check v "find name" (Value.Str "A") (Tuple.get t "name");
  Alcotest.check v "missing is Null" Value.Null (Tuple.get t "nope");
  Alcotest.(check bool) "mem" true (Tuple.mem t "year");
  Alcotest.(check int) "cardinal" 2 (Tuple.cardinal t)

let test_shadowing () =
  let t = mk [ ("x", Value.Int 1); ("x", Value.Int 2) ] in
  Alcotest.check v "later binding wins" (Value.Int 2) (Tuple.get t "x");
  Alcotest.(check int) "no duplicate" 1 (Tuple.cardinal t)

let test_set_remove () =
  let t = mk [ ("x", Value.Int 1) ] in
  let t2 = Tuple.set t "y" (Value.Int 2) in
  let t3 = Tuple.set t2 "x" (Value.Int 9) in
  Alcotest.check v "set new" (Value.Int 2) (Tuple.get t3 "y");
  Alcotest.check v "set replaces" (Value.Int 9) (Tuple.get t3 "x");
  Alcotest.check v "original untouched" (Value.Int 1) (Tuple.get t "x");
  Alcotest.(check bool) "remove" false (Tuple.mem (Tuple.remove t3 "x") "x")

let test_union () =
  let a = mk ~tag:"t" [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  let b = mk [ ("y", Value.Int 9); ("z", Value.Int 3) ] in
  let u = Tuple.union a b in
  Alcotest.check v "right wins on clash" (Value.Int 9) (Tuple.get u "y");
  Alcotest.check v "left kept" (Value.Int 1) (Tuple.get u "x");
  Alcotest.check v "right kept" (Value.Int 3) (Tuple.get u "z");
  Alcotest.(check (option string)) "left tag kept" (Some "t") (Tuple.tag u)

let test_project_rename () =
  let t = mk [ ("a", Value.Int 1); ("b", Value.Int 2); ("c", Value.Int 3) ] in
  let p = Tuple.project t [ "a"; "c"; "zz" ] in
  Alcotest.(check (list string)) "projected names" [ "a"; "c" ] (Tuple.names p);
  let r = Tuple.rename t [ ("a", "alpha") ] in
  Alcotest.check v "renamed" (Value.Int 1) (Tuple.get r "alpha");
  Alcotest.(check bool) "old gone" false (Tuple.mem r "a")

let test_equal_order_insensitive () =
  let a = mk [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  let b = mk [ ("y", Value.Int 2); ("x", Value.Int 1) ] in
  Alcotest.check tup "order-insensitive equality" a b

let test_label () =
  Alcotest.(check string) "label attr" "A"
    (Tuple.label (mk [ ("label", Value.Str "A") ]));
  Alcotest.(check string) "tag fallback" "author" (Tuple.label (mk ~tag:"author" []));
  Alcotest.(check string) "empty" "" (Tuple.label Tuple.empty)

let suite =
  [
    Alcotest.test_case "basic accessors" `Quick test_basic;
    Alcotest.test_case "name shadowing" `Quick test_shadowing;
    Alcotest.test_case "set / remove" `Quick test_set_remove;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "project / rename" `Quick test_project_rename;
    Alcotest.test_case "equality order-insensitive" `Quick test_equal_order_insensitive;
    Alcotest.test_case "label accessor" `Quick test_label;
  ]
