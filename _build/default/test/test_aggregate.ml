open Gql_core
open Gql_graph

let person name age city =
  let b =
    Graph.Builder.create
      ~tuple:
        (Tuple.make
           [ ("name", Value.Str name); ("age", Value.Int age); ("city", Value.Str city) ])
      ()
  in
  ignore (Graph.Builder.add_node b Tuple.empty);
  Graph.Builder.build b

let collection () =
  List.map
    (fun (n, a, c) -> Algebra.G (person n a c))
    [
      ("ann", 34, "york"); ("bob", 27, "leeds"); ("cat", 41, "york");
      ("dan", 27, "york"); ("eve", 35, "leeds");
    ]

let key = Pred.attr "city"
let age = Pred.attr "age"

let test_group_by () =
  let groups = Aggregate.group_by ~key (collection ()) in
  Alcotest.(check int) "two cities" 2 (List.length groups);
  match groups with
  | [ (Value.Str "york", york); (Value.Str "leeds", leeds) ] ->
    Alcotest.(check int) "york count" 3 (List.length york);
    Alcotest.(check int) "leeds count" 2 (List.length leeds)
  | _ -> Alcotest.fail "unexpected grouping (order should be first-seen)"

let test_count_by () =
  Alcotest.(check (list (pair string int)))
    "counts"
    [ ("\"york\"", 3); ("\"leeds\"", 2) ]
    (List.map
       (fun (k, n) -> (Value.to_string k, n))
       (Aggregate.count_by ~key (collection ())))

let test_order_and_top () =
  let sorted = Aggregate.order_by ~key:age (collection ()) in
  let ages =
    List.map (fun e -> Aggregate.eval_key e age) sorted
    |> List.map (function Value.Int i -> i | _ -> -1)
  in
  Alcotest.(check (list int)) "ascending ages" [ 27; 27; 34; 35; 41 ] ages;
  let top = Aggregate.top_k ~descending:true ~key:age 2 (collection ()) in
  Alcotest.(check int) "top 2" 2 (List.length top);
  Alcotest.(check bool) "oldest first" true
    (Aggregate.eval_key (List.hd top) age = Value.Int 41)

let test_numeric_aggregates () =
  let c = collection () in
  Alcotest.(check bool) "sum" true (Aggregate.sum ~key:age c = Value.Int 164);
  (match Aggregate.avg ~key:age c with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "avg" 32.8 f
  | _ -> Alcotest.fail "avg should be a float");
  Alcotest.(check bool) "min" true (Aggregate.min_value ~key:age c = Value.Int 27);
  Alcotest.(check bool) "max" true (Aggregate.max_value ~key:age c = Value.Int 41);
  Alcotest.(check int) "count" 5 (Aggregate.count c)

let test_missing_keys () =
  let c = Algebra.G (person "zed" 1 "york") :: collection () in
  let missing = Pred.attr "salary" in
  Alcotest.(check bool) "sum over missing key" true
    (Aggregate.sum ~key:missing c = Value.Int 0);
  Alcotest.(check bool) "avg over missing key is null" true
    (Aggregate.avg ~key:missing c = Value.Null);
  (* grouping by a missing key puts everything under Null *)
  Alcotest.(check int) "one null group" 1
    (List.length (Aggregate.group_by ~key:missing c))

let test_matched_entries () =
  (* aggregate over matched graphs: group author pairs by paper venue *)
  let g = Test_graph.sample_g () in
  let p = Gql_core.Gql.pattern_of_string {|graph P { node x where label="A"; }|} in
  let matches = Algebra.select ~patterns:[ p ] [ Algebra.G g ] in
  let by_label = Aggregate.count_by ~key:(Pred.path [ "x"; "label" ]) matches in
  Alcotest.(check (list (pair string int)))
    "matched-entry keys use the binding"
    [ ("\"A\"", 2) ]
    (List.map (fun (k, n) -> (Value.to_string k, n)) by_label)

let test_structural () =
  let c = [ Algebra.G (Test_graph.sample_g ()) ] in
  Alcotest.(check int) "nodes" 6 (Aggregate.count_nodes c);
  Alcotest.(check int) "edges" 6 (Aggregate.count_edges c);
  (* sample_g degrees: A1:2 B1:3 C1:1 B2:2 C2:3 A2:1 *)
  Alcotest.(check (list (pair int int))) "degree histogram"
    [ (1, 2); (2, 2); (3, 2) ]
    (Aggregate.degree_histogram c)

let prop_order_by_sorted =
  QCheck.Test.make ~name:"order_by produces a sorted permutation" ~count:100
    QCheck.(list small_int)
    (fun xs ->
      let c =
        List.map
          (fun x ->
            let b =
              Graph.Builder.create ~tuple:(Tuple.make [ ("k", Value.Int x) ]) ()
            in
            ignore (Graph.Builder.add_node b Tuple.empty);
            Algebra.G (Graph.Builder.build b))
          xs
      in
      let sorted = Aggregate.order_by ~key:(Pred.attr "k") c in
      let keys =
        List.map
          (fun e ->
            match Aggregate.eval_key e (Pred.attr "k") with
            | Value.Int i -> i
            | _ -> min_int)
          sorted
      in
      keys = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "group_by" `Quick test_group_by;
    Alcotest.test_case "count_by" `Quick test_count_by;
    Alcotest.test_case "order_by / top_k" `Quick test_order_and_top;
    Alcotest.test_case "numeric aggregates" `Quick test_numeric_aggregates;
    Alcotest.test_case "missing keys" `Quick test_missing_keys;
    Alcotest.test_case "aggregates over matched graphs" `Quick test_matched_entries;
    Alcotest.test_case "structural aggregates" `Quick test_structural;
    QCheck_alcotest.to_alcotest prop_order_by_sorted;
  ]
