open Gql_core
open Gql_graph

let paper title authors =
  let b = Graph.Builder.create ~tuple:(Tuple.make [ ("title", Value.Str title) ]) () in
  List.iteri
    (fun i name ->
      ignore
        (Graph.Builder.add_node b
           ~name:(Printf.sprintf "v%d" (i + 1))
           (Tuple.make ~tag:"author" [ ("name", Value.Str name) ])))
    authors;
  Graph.Builder.build b

let author_pair_pattern =
  Gql.pattern_of_string "graph P { node v1 <author>; node v2 <author>; }"

let test_select () =
  let c = [ Algebra.G (paper "t1" [ "A"; "B" ]); Algebra.G (paper "t2" [ "C" ]) ] in
  let matches = Algebra.select ~patterns:[ author_pair_pattern ] c in
  (* paper 1 has 2 ordered author pairs; paper 2 has none *)
  Alcotest.(check int) "ordered pairs" 2 (List.length matches);
  match matches with
  | Algebra.M m :: _ ->
    Alcotest.(check bool) "binding accessible" true (Matched.node m "v1" <> None)
  | _ -> Alcotest.fail "expected matched entries"

let test_select_non_exhaustive () =
  let c = [ Algebra.G (paper "t1" [ "A"; "B"; "C" ]) ] in
  let all = Algebra.select ~patterns:[ author_pair_pattern ] c in
  let one = Algebra.select ~exhaustive:false ~patterns:[ author_pair_pattern ] c in
  Alcotest.(check int) "exhaustive: 6 ordered pairs" 6 (List.length all);
  Alcotest.(check int) "single mapping" 1 (List.length one)

let test_cartesian () =
  let c = [ Algebra.G (paper "a" [ "A" ]) ] in
  let d = [ Algebra.G (paper "b" [ "B" ]); Algebra.G (paper "c" [ "C" ]) ] in
  let prod = Algebra.cartesian c d in
  Alcotest.(check int) "2 pairs" 2 (List.length prod);
  let g = Algebra.underlying (List.hd prod) in
  Alcotest.(check int) "unconnected union" 2 (Graph.n_nodes g);
  Alcotest.(check int) "no edges" 0 (Graph.n_edges g)

let test_valued_join () =
  let mk name id =
    let b =
      Graph.Builder.create ~name
        ~tuple:(Tuple.make [ ("id", Value.Int id) ])
        ()
    in
    ignore (Graph.Builder.add_node b Tuple.empty);
    Graph.Builder.build b
  in
  let c = [ Algebra.G (mk "G1" 1); Algebra.G (mk "G1" 2) ] in
  let d = [ Algebra.G (mk "G2" 1); Algebra.G (mk "G2" 3) ] in
  let joined =
    Algebra.join
      ~on:Pred.(path [ "G1"; "id" ] = path [ "G2"; "id" ])
      c d
  in
  Alcotest.(check int) "only ids 1=1 join" 1 (List.length joined)

let test_set_operators () =
  let a = Algebra.G (paper "x" [ "A" ]) in
  let a' = Algebra.G (paper "x" [ "A" ]) in
  let b = Algebra.G (paper "y" [ "B" ]) in
  let c = Algebra.G (paper "z" [ "C" ]) in
  Alcotest.(check int) "union dedups isomorphic" 3
    (List.length (Algebra.union [ a; b ] [ a'; c ]));
  Alcotest.(check int) "difference" 1 (List.length (Algebra.difference [ a; b ] [ a' ]));
  Alcotest.(check int) "intersection" 1
    (List.length (Algebra.intersection [ a; b ] [ a'; c ]));
  Alcotest.(check int) "distinct" 2 (List.length (Algebra.distinct [ a; a'; b ]))

let test_compose () =
  (* Figure 4.11: build a new graph from the matched pair *)
  let template =
    Gql.parse_graph_decl
      {|graph {
          node v1 <label=P.v1.name>;
          node v2 <label=P.title>;
          edge e1 (v1, v2);
        }|}
  in
  let c = [ Algebra.G (paper "Title1" [ "A"; "B" ]) ] in
  let matches =
    Algebra.select ~exhaustive:false
      ~patterns:
        [ Gql.pattern_of_string "graph P { node v1 <author>; node v2 <author>; }" ]
      c
  in
  let out = Algebra.compose ~template ~param:"P" matches in
  Alcotest.(check int) "one instantiation" 1 (List.length out);
  let g = Algebra.underlying (List.hd out) in
  Alcotest.(check int) "two nodes" 2 (Graph.n_nodes g);
  Alcotest.(check int) "one edge" 1 (Graph.n_edges g);
  let labels =
    List.sort compare [ Graph.label g 0; Graph.label g 1 ]
  in
  Alcotest.(check (list string)) "labels from the binding" [ "A"; "Title1" ] labels

let test_relational_simulation () =
  (* Theorem 4.5: RA on single-node graphs *)
  let r =
    Algebra.rel_of_tuples
      [
        Tuple.make [ ("id", Value.Int 1); ("name", Value.Str "x") ];
        Tuple.make [ ("id", Value.Int 2); ("name", Value.Str "y") ];
      ]
  in
  let s = Algebra.rel_select Pred.(attr "id" > int 1) r in
  Alcotest.(check int) "selection" 1 (List.length s);
  let p = Algebra.rel_project [ "name" ] r in
  Alcotest.(check (list string)) "projection"
    [ "name" ]
    (Tuple.names (List.hd (Algebra.tuples_of_rel p)));
  let rn = Algebra.rel_rename [ ("id", "key") ] r in
  Alcotest.(check bool) "rename" true
    (Tuple.mem (List.hd (Algebra.tuples_of_rel rn)) "key");
  let prod = Algebra.rel_product (Algebra.rel_project [ "id" ] r) (Algebra.rel_rename [ ("id", "id2"); ("name", "name2") ] r) in
  Alcotest.(check int) "product" 4 (List.length prod)

let test_compose_n () =
  (* the general composition: ω over the product of two collections *)
  let template =
    Gql.parse_graph_decl
      {|graph {
          node l <t=Left.title>;
          node r <t=Right.title>;
          edge e (l, r);
        }|}
  in
  let left = [ Algebra.G (paper "t1" [ "A" ]); Algebra.G (paper "t2" [ "B" ]) ] in
  let right = [ Algebra.G (paper "t3" [ "C" ]) ] in
  let out =
    Algebra.compose_n ~template ~params:[ "Left"; "Right" ] [ left; right ]
  in
  Alcotest.(check int) "2 x 1 combinations" 2 (List.length out);
  List.iter
    (fun e ->
      let g = Algebra.underlying e in
      Alcotest.(check int) "pair graph" 2 (Graph.n_nodes g))
    out;
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Algebra.compose_n: params/collections arity mismatch")
    (fun () -> ignore (Algebra.compose_n ~template ~params:[ "only" ] [ left; right ]))

let test_cartesian_with_matched () =
  (* matched graphs participate in products as the graphs they annotate *)
  let c = [ Algebra.G (paper "t1" [ "A"; "B" ]) ] in
  let matches = Algebra.select ~exhaustive:false ~patterns:[ author_pair_pattern ] c in
  let prod = Algebra.cartesian matches c in
  Alcotest.(check int) "product size" 1 (List.length prod);
  Alcotest.(check int) "nodes from both operands" 4
    (Graph.n_nodes (Algebra.underlying (List.hd prod)))

let test_selection_distributes_over_union () =
  (* an algebraic law inherited from RA: σ(C ∪ D) = σ(C) ∪ σ(D) *)
  let c = [ Algebra.G (paper "t1" [ "A"; "B" ]) ] in
  let d = [ Algebra.G (paper "t2" [ "C"; "D" ]) ] in
  let p = [ author_pair_pattern ] in
  let lhs = Algebra.select ~patterns:p (c @ d) in
  let rhs = Algebra.select ~patterns:p c @ Algebra.select ~patterns:p d in
  Alcotest.(check int) "same cardinality" (List.length rhs) (List.length lhs)

let suite =
  [
    Alcotest.test_case "selection" `Quick test_select;
    Alcotest.test_case "non-exhaustive selection" `Quick test_select_non_exhaustive;
    Alcotest.test_case "cartesian product" `Quick test_cartesian;
    Alcotest.test_case "valued join (Fig 4.10)" `Quick test_valued_join;
    Alcotest.test_case "set operators" `Quick test_set_operators;
    Alcotest.test_case "composition (Fig 4.11)" `Quick test_compose;
    Alcotest.test_case "n-ary composition" `Quick test_compose_n;
    Alcotest.test_case "product with matched graphs" `Quick test_cartesian_with_matched;
    Alcotest.test_case "relational simulation (Thm 4.5)" `Quick test_relational_simulation;
    Alcotest.test_case "σ distributes over ∪" `Quick test_selection_distributes_over_union;
  ]
