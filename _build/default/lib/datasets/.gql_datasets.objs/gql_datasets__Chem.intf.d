lib/datasets/chem.mli: Gql_graph Graph
