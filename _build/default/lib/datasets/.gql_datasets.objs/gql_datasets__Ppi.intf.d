lib/datasets/ppi.mli: Gql_graph Graph
