lib/datasets/zipf.ml: Array Rng
