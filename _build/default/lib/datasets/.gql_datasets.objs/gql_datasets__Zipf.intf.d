lib/datasets/zipf.mli: Rng
