lib/datasets/queries.ml: Array Gql_graph Gql_index Gql_matcher Graph Hashtbl List Rng
