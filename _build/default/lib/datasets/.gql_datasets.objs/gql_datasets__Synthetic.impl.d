lib/datasets/synthetic.ml: Array Gql_graph Graph Hashtbl List Printf Rng Zipf
