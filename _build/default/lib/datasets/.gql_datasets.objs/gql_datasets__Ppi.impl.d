lib/datasets/ppi.ml: Array Gql_graph Graph Hashtbl List Printf Rng Tuple Value Zipf
