lib/datasets/rng.mli:
