lib/datasets/rng.ml: Array Int64
