lib/datasets/queries.mli: Gql_graph Gql_index Gql_matcher Graph Rng
