lib/datasets/chem.ml: Array Gql_graph Graph List Printf Rng Tuple Value
