lib/datasets/dblp.mli: Gql_graph Graph
