lib/datasets/synthetic.mli: Gql_graph Graph Rng
