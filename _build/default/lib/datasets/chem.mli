(** Chemical-compound-like graphs.

    Small molecules: rings of 5–6 atoms with side chains, atoms labeled
    by element (C/N/O/S), edges carrying a [bond] attribute (1 = single,
    2 = double). Supports the heterocyclic-compound example from the
    paper's introduction ("find all heterocyclic compounds that contain
    a given aromatic ring and a side chain"). *)

open Gql_graph

val generate : ?seed:int -> n_compounds:int -> unit -> Graph.t list

val benzene_like : unit -> Graph.t
(** A six-carbon aromatic ring with alternating bond orders — usable as
    a query pattern structure. *)
