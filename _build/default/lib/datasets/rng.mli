(** Deterministic pseudo-random numbers (splitmix64).

    Every generator in this library threads an explicit [Rng.t] so that
    datasets and query workloads are reproducible from a seed — the
    experiments print their seeds, and the test suite pins them. *)

type t

val create : int -> t
(** Seeded generator. Equal seeds give equal streams. *)

val next : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
val choose : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit
val split : t -> t
(** An independent generator derived from this one's stream. *)
