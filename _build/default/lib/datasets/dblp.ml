open Gql_graph

let author_name i = Printf.sprintf "author%d" i

let generate ?(seed = 42) ?(n_authors = 200)
    ?(venues = [ "SIGMOD"; "VLDB"; "ICDE" ]) ~n_papers () =
  let rng = Rng.create seed in
  let z = Zipf.create n_authors in
  let venue_arr = Array.of_list venues in
  List.init n_papers (fun p ->
      let k = 1 + Rng.int rng 5 in
      (* draw k distinct authors *)
      let authors = Hashtbl.create k in
      while Hashtbl.length authors < k do
        Hashtbl.replace authors (Zipf.sample z rng) ()
      done;
      let venue = Rng.choose rng venue_arr in
      let year = 2000 + Rng.int rng 9 in
      let b =
        Graph.Builder.create
          ~name:(Printf.sprintf "paper%d" p)
          ~tuple:
            (Tuple.make ~tag:"inproceedings"
               [
                 ("booktitle", Value.Str venue);
                 ("year", Value.Int year);
                 ("title", Value.Str (Printf.sprintf "Title%d" p));
               ])
          ()
      in
      let i = ref 0 in
      Hashtbl.iter
        (fun a () ->
          incr i;
          ignore
            (Graph.Builder.add_node b
               ~name:(Printf.sprintf "v%d" !i)
               (Tuple.make ~tag:"author" [ ("name", Value.Str (author_name a)) ])))
        authors;
      Graph.Builder.build b)
