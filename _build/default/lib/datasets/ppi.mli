(** Synthetic yeast protein-interaction network (§5.1 substitute).

    The paper's real dataset [Asthana et al. 2004] has 3112 proteins,
    12519 interactions, and 183 distinct high-level Gene Ontology terms
    used as labels. We reproduce those population statistics with a
    preferential-attachment topology (protein networks are heavy-tailed)
    and a skewed label distribution; the access-method experiments
    depend only on size, degree distribution, label count and label
    skew. See DESIGN.md §3 for the substitution rationale. *)

open Gql_graph

val n_nodes : int  (** 3112 *)

val n_edges_target : int  (** 12519 *)

val n_labels : int  (** 183 *)

val generate : ?seed:int -> unit -> Graph.t
(** The default network used by benchmarks and examples (seed 2008). *)

val go_term : int -> string
(** Label vocabulary: ["GO0000" .. "GO0182"]. *)
