open Gql_graph

let atom b ?name element =
  Graph.Builder.add_node b ?name (Tuple.make ~tag:"atom" [ ("label", Value.Str element) ])

let bond b ?(order = 1) u v =
  ignore
    (Graph.Builder.add_edge b ~tuple:(Tuple.make [ ("bond", Value.Int order) ]) u v)

let benzene_like () =
  let b = Graph.Builder.create ~name:"benzene" () in
  let atoms = Array.init 6 (fun i -> atom b ~name:(Printf.sprintf "c%d" i) "C") in
  for i = 0 to 5 do
    bond b ~order:(1 + (i mod 2)) atoms.(i) atoms.((i + 1) mod 6)
  done;
  Graph.Builder.build b

let elements = [| "C"; "C"; "C"; "C"; "N"; "O"; "S" |]  (* carbon-heavy *)

let generate ?(seed = 7) ~n_compounds () =
  let rng = Rng.create seed in
  List.init n_compounds (fun c ->
      let b = Graph.Builder.create ~name:(Printf.sprintf "compound%d" c) () in
      (* ring of 5 or 6 atoms; heterocyclic when a ring atom is not C *)
      let ring_size = 5 + Rng.int rng 2 in
      let ring =
        Array.init ring_size (fun _ -> atom b (Rng.choose rng elements))
      in
      for i = 0 to ring_size - 1 do
        bond b ~order:(1 + (i mod 2)) ring.(i) ring.((i + 1) mod ring_size)
      done;
      (* side chains *)
      let n_chains = Rng.int rng 3 in
      for _ = 1 to n_chains do
        let attach = ring.(Rng.int rng ring_size) in
        let len = 1 + Rng.int rng 3 in
        let prev = ref attach in
        for _ = 1 to len do
          let a = atom b (Rng.choose rng elements) in
          bond b !prev a;
          prev := a
        done
      done;
      Graph.Builder.build b)
