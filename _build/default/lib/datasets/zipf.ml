type t = {
  cumulative : float array;  (* cumulative.(i) = P(rank <= i) *)
}

let create ?(exponent = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create: need a positive support";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc)
    weights;
  cumulative.(n - 1) <- 1.0;
  { cumulative }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* binary search for the first index with cumulative >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t i =
  if i = 0 then t.cumulative.(0)
  else t.cumulative.(i) -. t.cumulative.(i - 1)
