(** Zipf-distributed sampling.

    §5.2: "The distribution of the labels follows Zipf's law, i.e.,
    probability of the x-th label p(x) is proportional to x^-1." *)

type t

val create : ?exponent:float -> int -> t
(** [create n]: a sampler over ranks [1..n] with p(x) ∝ x^(-exponent)
    (default exponent 1.0). *)

val sample : t -> Rng.t -> int
(** A rank in [0, n), 0 being the most probable. *)

val probability : t -> int -> float
(** The probability of rank [i] (0-based). *)
