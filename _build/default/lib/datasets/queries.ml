open Gql_graph

let clique ?weights rng ~labels ~size =
  let pool = Array.of_list labels in
  let pick =
    match weights with
    | None -> fun () -> Rng.choose rng pool
    | Some ws ->
      let ws = Array.of_list ws in
      if Array.length ws <> Array.length pool then
        invalid_arg "Queries.clique: weights/labels arity mismatch";
      let total = Array.fold_left ( +. ) 0.0 ws in
      fun () ->
        let u = Rng.float rng total in
        let acc = ref 0.0 and chosen = ref pool.(Array.length pool - 1) in
        (try
           Array.iteri
             (fun i w ->
               acc := !acc +. w;
               if u < !acc then begin
                 chosen := pool.(i);
                 raise Exit
               end)
             ws
         with Exit -> ());
        !chosen
  in
  Gql_matcher.Flat_pattern.clique (List.init size (fun _ -> pick ()))

let label_weights idx labels =
  List.map (fun l -> float_of_int (Gql_index.Label_index.frequency idx l)) labels

let top_labels idx k = Gql_index.Label_index.top_frequent idx k

let connected_subgraph rng g ~size =
  let n = Graph.n_nodes g in
  if n < size then invalid_arg "Queries.connected_subgraph: graph too small";
  let attempt () =
    let start = Rng.int rng n in
    let chosen = Hashtbl.create size in
    Hashtbl.add chosen start ();
    (* keep the discovery order: every node after the first is adjacent
       to an earlier one, so the pattern's input order has no
       disconnected prefix — as a hand-extracted query's would not *)
    let order = ref [ start ] in
    let ok = ref true in
    while Hashtbl.length chosen < size && !ok do
      let candidates =
        List.concat_map
          (fun v ->
            Array.to_list (Graph.neighbors g v)
            |> List.filter_map (fun (w, _) ->
                   if Hashtbl.mem chosen w then None else Some w))
          !order
      in
      match candidates with
      | [] -> ok := false
      | _ ->
        let next = Rng.choose rng (Array.of_list candidates) in
        Hashtbl.add chosen next ();
        order := next :: !order
    done;
    if !ok then Some (List.rev !order) else None
  in
  let rec retry k =
    if k = 0 then
      invalid_arg "Queries.connected_subgraph: could not find a component that large"
    else
      match attempt () with
      | Some nodes ->
        let index_of = Hashtbl.create size in
        List.iteri (fun i v -> Hashtbl.add index_of v i) nodes;
        let labels = Array.of_list (List.map (Graph.label g) nodes) in
        let edges = ref [] in
        List.iter
          (fun v ->
            let i = Hashtbl.find index_of v in
            Array.iter
              (fun (w, _) ->
                match Hashtbl.find_opt index_of w with
                | Some j when i < j -> edges := (i, j) :: !edges
                | _ -> ())
              (Graph.neighbors g v))
          nodes;
        Gql_matcher.Flat_pattern.of_graph
          (Graph.of_labeled ~labels (List.sort_uniq compare !edges))
      | None -> retry (k - 1)
  in
  retry 100

type group = Low_hits | High_hits

let classify ?(threshold = 100) ~n_answers () =
  if n_answers < threshold then Low_hits else High_hits
