(** DBLP-like paper collections (a collection of small graphs).

    Each paper is a graph in the style of Figure 4.7: a title node and
    one [<author name="...">] node per author; the graph tuple carries
    the venue and year, so FLWR queries can filter on
    [P.booktitle = "SIGMOD"] as in Figure 4.12. *)

open Gql_graph

val generate :
  ?seed:int ->
  ?n_authors:int ->
  ?venues:string list ->
  n_papers:int ->
  unit ->
  Graph.t list
(** Authors are drawn from a Zipf-skewed pool (prolific authors appear
    often), 1–5 authors per paper. Default pool 200 authors, venues
    [["SIGMOD"; "VLDB"; "ICDE"]]. *)

val author_name : int -> string
(** ["author17"] style pool names. *)
