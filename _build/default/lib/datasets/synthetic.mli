(** Synthetic graph generators for the experimental study (§5.2).

    "The synthetic graphs are generated using a simple Erdős–Rényi
    random graph model: generate n nodes, and then generate m edges by
    randomly choosing two end nodes. Each node is assigned a label (100
    distinct labels in total). The distribution of the labels follows
    Zipf's law." *)

open Gql_graph

val erdos_renyi :
  ?n_labels:int -> ?zipf_exponent:float -> Rng.t -> n:int -> m:int -> Graph.t
(** [erdos_renyi rng ~n ~m]: [n] nodes, [m] distinct edges with
    uniformly random endpoints (self-loops and duplicate edges are
    redrawn). Labels ["L0" .. "L<k-1>"] (default 100) assigned
    Zipf-distributed, most frequent first. *)

val barabasi_albert :
  ?n_labels:int -> ?zipf_exponent:float -> Rng.t -> n:int -> m_per_node:int -> Graph.t
(** Preferential attachment: each new node attaches to [m_per_node]
    existing nodes chosen proportionally to degree. Power-law degree
    distribution; used as the protein-network surrogate. *)

val label_array : Graph.t -> string array
