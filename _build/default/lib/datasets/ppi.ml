open Gql_graph

let n_nodes = 3112
let n_edges_target = 12519
let n_labels = 183

let go_term i = Printf.sprintf "GO%04d" i

(* A protein interaction network is not an Erdős–Rényi graph: it is
   clique-rich — protein complexes interact pairwise, so each complex is
   a near-clique, and large machines (ribosome, proteasome, spliceosome)
   form dense cores of dozens of functionally diverse proteins. The §5.1
   clique-query workload (random labels from the 40 most frequent) only
   has answers at sizes 5-7 because such cores exist; a degree-matched
   random graph has none. We therefore plant:
   - a few large dense cores whose members span the frequent GO terms
     (the home of the large clique answers),
   - many small complexes whose members share a dominant GO term
     (function correlates within a complex),
   - random background interactions up to the published edge count. *)
let generate ?(seed = 2008) () =
  let rng = Rng.create seed in
  let label_z = Zipf.create ~exponent:1.1 n_labels in
  let labels = Array.init n_nodes (fun _ -> go_term (Zipf.sample label_z rng)) in
  let seen = Hashtbl.create (4 * n_edges_target) in
  let edges = ref [] in
  let n_edges = ref 0 in
  let add_edge u v =
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := key :: !edges;
        incr n_edges
      end
    end
  in
  (* small complexes with correlated labels first (the dense cores below
     overwrite the labels of their members afterwards) *)
  let n_complexes = 360 in
  for _ = 1 to n_complexes do
    let size = 3 + Rng.int rng 6 in
    let members = Array.init size (fun _ -> Rng.int rng n_nodes) in
    let dominant = go_term (Zipf.sample label_z rng) in
    Array.iter
      (fun m -> if Rng.float rng 1.0 < 0.6 then labels.(m) <- dominant)
      members;
    Array.iteri
      (fun i u -> Array.iteri (fun j v -> if j > i then add_edge u v) members)
      members
  done;
  (* large dense cores: the big half-dense one concentrates on the six
     most frequent GO terms (multiplicity ~16 per label — the home of
     the high-hit queries); the smaller near-cliques span the top-40
     (the home of the large low-hit clique answers) *)
  List.iter
    (fun (size, density, pool) ->
      let members = Array.init size (fun _ -> Rng.int rng n_nodes) in
      Array.iter (fun m -> labels.(m) <- go_term (Rng.int rng pool)) members;
      Array.iteri
        (fun i u ->
          Array.iteri
            (fun j v -> if j > i && Rng.float rng 1.0 < density then add_edge u v)
            members)
        members)
    [ (100, 0.55, 6); (56, 0.92, 40); (44, 0.92, 40); (30, 0.92, 40) ];
  (* random background interactions up to the published count *)
  while !n_edges < n_edges_target do
    add_edge (Rng.int rng n_nodes) (Rng.int rng n_nodes)
  done;
  let edges = List.filteri (fun i _ -> i < n_edges_target) !edges in
  let b = Graph.Builder.create ~name:"yeast_ppi" () in
  Array.iteri
    (fun i l ->
      ignore
        (Graph.Builder.add_node b
           ~name:(Printf.sprintf "P%04d" i)
           (Tuple.make ~tag:"protein"
              [ ("label", Value.Str l); ("orf", Value.Str (Printf.sprintf "Y%04d" i)) ])))
    labels;
  List.iter (fun (u, v) -> ignore (Graph.Builder.add_edge b u v)) edges;
  Graph.Builder.build b
