open Gql_graph

module Smap = Btree.Make (String)

type t = {
  by_label : int list Smap.t;  (* label -> node ids, descending (reversed on query) *)
  freqs : (string * int) list;  (* descending frequency *)
}

let build g =
  let by_label =
    Graph.fold_nodes g ~init:(Smap.empty ()) ~f:(fun acc v ->
        let l = Graph.label g v in
        Smap.update l
          (function None -> Some [ v ] | Some vs -> Some (v :: vs))
          acc)
  in
  let freqs =
    Smap.to_seq by_label
    |> Seq.map (fun (l, vs) -> (l, List.length vs))
    |> List.of_seq
    |> List.sort (fun (l1, f1) (l2, f2) ->
           match compare f2 f1 with 0 -> String.compare l1 l2 | c -> c)
  in
  { by_label; freqs }

let nodes_with_label t l =
  match Smap.find l t.by_label with None -> [] | Some vs -> List.rev vs

let frequency t l =
  match Smap.find l t.by_label with None -> 0 | Some vs -> List.length vs

let labels t = Smap.to_seq t.by_label |> Seq.map fst |> List.of_seq
let distinct_labels t = Smap.cardinal t.by_label

let top_frequent t k =
  List.filteri (fun i _ -> i < k) t.freqs |> List.map fst

let range t ~lo ~hi =
  Smap.range ~lo:(Smap.Key_incl lo) ~hi:(Smap.Key_incl hi) t.by_label
  |> Seq.map (fun (l, vs) -> (l, List.rev vs))
  |> List.of_seq
