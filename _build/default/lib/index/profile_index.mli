(** Per-node neighborhood profiles and subgraphs (§4.2).

    Built once over a data graph for a fixed radius [r]: profiles are
    precomputed for every node (they are cheap — one BFS ball each);
    full neighborhood subgraphs are materialized lazily and memoized,
    since only nodes that survive profile pruning ever need one. *)

type t

val build : ?r:int -> Gql_graph.Graph.t -> t
(** Default radius 1, as in the experimental study. *)

val radius : t -> int
val graph : t -> Gql_graph.Graph.t
val profile : t -> int -> Gql_graph.Profile.t
val neighborhood : t -> int -> Gql_graph.Neighborhood.t
