open Gql_graph

type t = {
  len : int;
  n : int;
  (* feature -> graph id -> multiplicity *)
  postings : (string, (int, int) Hashtbl.t) Hashtbl.t;
}

(* enumerate simple paths of up to [max_len] edges as node-id lists,
   canonicalized so each undirected path is produced once *)
let simple_paths ~max_len g =
  let acc = ref [] in
  let rec extend path last depth =
    (* [path] is reversed, [last] its head *)
    if depth < max_len then
      Array.iter
        (fun (w, _) ->
          if not (List.mem w path) then begin
            let path' = w :: path in
            (* canonical: emit only if the forward reading is minimal *)
            let fwd = List.rev path' in
            if Graph.directed g || fwd <= path' then acc := fwd :: !acc;
            extend path' w (depth + 1)
          end)
        (Graph.neighbors g last)
  in
  Graph.iter_nodes g ~f:(fun v ->
      acc := [ v ] :: !acc;
      extend [ v ] v 0);
  !acc

let labels_complete g path =
  List.for_all (fun v -> Graph.label g v <> "") path

(* the feature must be canonical in *label* space: the same undirected
   path read from either end must produce the same string, whatever the
   node ids are *)
let feature_of g path =
  let fwd = List.map (Graph.label g) path in
  let seq = if Graph.directed g then fwd else min fwd (List.rev fwd) in
  String.concat "/" seq

let features_of_graph ~max_len g =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun path ->
      if labels_complete g path then begin
        let f = feature_of g path in
        Hashtbl.replace counts f (1 + Option.value (Hashtbl.find_opt counts f) ~default:0)
      end)
    (simple_paths ~max_len g);
  Hashtbl.fold (fun f c acc -> (f, c) :: acc) counts [] |> List.sort compare

let build ?(max_len = 3) graphs =
  let postings = Hashtbl.create 1024 in
  Array.iteri
    (fun id g ->
      List.iter
        (fun (f, c) ->
          let per_graph =
            match Hashtbl.find_opt postings f with
            | Some h -> h
            | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.add postings f h;
              h
          in
          Hashtbl.replace per_graph id c)
        (features_of_graph ~max_len g))
    graphs;
  { len = max_len; n = Array.length graphs; postings }

let max_len t = t.len
let n_graphs t = t.n
let n_features t = Hashtbl.length t.postings

let candidates t pattern =
  let features = features_of_graph ~max_len:t.len pattern in
  match features with
  | [] -> List.init t.n Fun.id  (* nothing to filter on *)
  | _ ->
    (* survivors must carry every feature with enough multiplicity *)
    let surviving = Hashtbl.create 64 in
    let first = ref true in
    List.iter
      (fun (f, need) ->
        let have =
          Option.value (Hashtbl.find_opt t.postings f) ~default:(Hashtbl.create 1)
        in
        if !first then begin
          first := false;
          Hashtbl.iter (fun id c -> if c >= need then Hashtbl.add surviving id ()) have
        end
        else begin
          let keep = Hashtbl.create (Hashtbl.length surviving) in
          Hashtbl.iter
            (fun id () ->
              match Hashtbl.find_opt have id with
              | Some c when c >= need -> Hashtbl.add keep id ()
              | _ -> ())
            surviving;
          Hashtbl.reset surviving;
          Hashtbl.iter (Hashtbl.add surviving) keep
        end)
      features;
    Hashtbl.fold (fun id () acc -> id :: acc) surviving [] |> List.sort compare

let filter_ratio t pattern =
  if t.n = 0 then 0.0
  else float_of_int (List.length (candidates t pattern)) /. float_of_int t.n
