open Gql_graph

type t = {
  r : int;
  graph : Graph.t;
  profiles : Profile.t array;
  nbh_cache : (int, Neighborhood.t) Hashtbl.t;
}

let build ?(r = 1) graph =
  {
    r;
    graph;
    profiles = Profile.all graph ~r;
    nbh_cache = Hashtbl.create 256;
  }

let radius t = t.r
let graph t = t.graph
let profile t v = t.profiles.(v)

let neighborhood t v =
  match Hashtbl.find_opt t.nbh_cache v with
  | Some n -> n
  | None ->
    let n = Neighborhood.make t.graph v ~r:t.r in
    Hashtbl.add t.nbh_cache v n;
    n
