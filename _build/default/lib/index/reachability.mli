(** Reachability index (§6.2).

    "Another line of graph indexing addresses reachability queries in
    large directed graphs … Reachability queries correspond to recursive
    graph patterns which are paths. These techniques can be incorporated
    into access methods for recursive graph pattern queries."

    For undirected graphs the index is a union-find over connected
    components (O(α) queries). For directed graphs: Tarjan's strongly
    connected components, then a transitive closure over the condensed
    DAG kept as per-component bit sets filled in reverse topological
    order — O(1) queries after an O(V·E/w) build, appropriate for the
    up-to-10⁵-node graphs this library targets. *)

open Gql_graph

type t

val build : Graph.t -> t

val reachable : t -> int -> int -> bool
(** [reachable t u v]: is there a path from [u] to [v]? ([true] when
    [u = v].) *)

val n_components : t -> int
(** Connected components (undirected) or strongly connected components
    (directed). *)

val component : t -> int -> int
(** Component id of a node (dense, [0 .. n_components-1]). *)
