open Gql_graph

type t =
  | Undirected of { comp : int array; n_comps : int }
  | Directed of {
      comp : int array;  (* node -> scc id *)
      n_comps : int;
      closure : Bytes.t array;  (* scc -> bitset of reachable sccs *)
    }

(* --- undirected: plain union-find --- *)

let build_undirected g =
  let n = Graph.n_nodes g in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  Graph.iter_edges g ~f:(fun _ e ->
      let a = find e.Graph.src and b = find e.Graph.dst in
      if a <> b then parent.(max a b) <- min a b);
  let comp = Array.make n 0 in
  let ids = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    let r = find v in
    let id =
      match Hashtbl.find_opt ids r with
      | Some id -> id
      | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids r id;
        id
    in
    comp.(v) <- id
  done;
  Undirected { comp; n_comps = Hashtbl.length ids }

(* --- directed: iterative Tarjan SCC + bitset closure --- *)

let tarjan g =
  let n = Graph.n_nodes g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let n_comps = ref 0 in
  (* iterative DFS: frames of (node, next neighbor position) *)
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let frames = ref [ (root, ref 0) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, pos) :: rest ->
          let nbrs = Graph.neighbors g v in
          if !pos < Array.length nbrs then begin
            let w, _ = nbrs.(!pos) in
            incr pos;
            if index.(w) < 0 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              stack := w :: !stack;
              on_stack.(w) <- true;
              frames := (w, ref 0) :: !frames
            end
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            (* leaving v *)
            (match rest with
            | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              (* pop the SCC *)
              let id = !n_comps in
              incr n_comps;
              let continue = ref true in
              while !continue do
                match !stack with
                | [] -> continue := false
                | w :: tl ->
                  stack := tl;
                  on_stack.(w) <- false;
                  comp.(w) <- id;
                  if w = v then continue := false
              done
            end;
            frames := rest
          end
      done
    end
  done;
  (comp, !n_comps)

let bit_mem bits i = Char.code (Bytes.get bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bits i =
  Bytes.set bits (i lsr 3)
    (Char.chr (Char.code (Bytes.get bits (i lsr 3)) lor (1 lsl (i land 7))))

let bytes_or dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lor Char.code (Bytes.get src i)))
  done

let build_directed g =
  let comp, n_comps = tarjan g in
  (* condensed DAG edges *)
  let dag_succ = Array.make n_comps [] in
  Graph.iter_edges g ~f:(fun _ e ->
      let a = comp.(e.Graph.src) and b = comp.(e.Graph.dst) in
      if a <> b then dag_succ.(a) <- b :: dag_succ.(a));
  (* Tarjan numbers SCCs in reverse topological order: every inter-SCC
     edge (a, b) has comp a > comp b, so filling closures for 0, 1, …
     sees each successor's closure already complete *)
  let words = (n_comps + 7) / 8 in
  let closure = Array.init n_comps (fun _ -> Bytes.make words '\000') in
  for c = 0 to n_comps - 1 do
    bit_set closure.(c) c;
    List.iter
      (fun succ ->
        bit_set closure.(c) succ;
        bytes_or closure.(c) closure.(succ))
      dag_succ.(c)
  done;
  Directed { comp; n_comps; closure }

let build g = if Graph.directed g then build_directed g else build_undirected g

let reachable t u v =
  match t with
  | Undirected { comp; _ } -> comp.(u) = comp.(v)
  | Directed { comp; closure; _ } -> bit_mem closure.(comp.(u)) comp.(v)

let n_components = function
  | Undirected { n_comps; _ } | Directed { n_comps; _ } -> n_comps

let component t v =
  match t with Undirected { comp; _ } | Directed { comp; _ } -> comp.(v)
