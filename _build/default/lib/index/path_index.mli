(** A path-feature index for collections of small graphs.

    The paper's first database category (§4): "a large collection of
    small graphs, e.g., chemical compounds … A number of graph indexing
    techniques have been proposed … Graph indexing plays a similar role
    for graph databases as B-trees for relational databases: only a
    small number of graphs need to be accessed." This is the classic
    GraphGrep-style instance [Shasha, Wang & Giugno, PODS 2002]: index
    every label path of bounded length, filter by feature-count
    containment, and verify only the surviving candidates with the
    pattern matcher.

    Soundness: an embedding maps distinct pattern paths to distinct
    data paths with the same label sequence, so any graph containing
    the pattern satisfies [count_g f >= count_p f] for every pattern
    feature [f]. Pattern paths through unlabeled (wildcard) nodes are
    simply not used for filtering. *)

open Gql_graph

type t

val build : ?max_len:int -> Graph.t array -> t
(** [max_len] is the maximum number of edges per indexed path
    (default 3; 0 = node labels only). *)

val max_len : t -> int
val n_graphs : t -> int
val n_features : t -> int

val features_of_graph : max_len:int -> Graph.t -> (string * int) list
(** Canonical label-path features with their multiplicities. Exposed
    for tests. *)

val candidates : t -> Graph.t -> int list
(** Ids of the graphs that pass the filter for the given pattern
    structure (a labeled graph), ascending. A superset of the graphs
    actually containing the pattern. *)

val filter_ratio : t -> Graph.t -> float
(** |candidates| / |collection| — the filtering power measure. *)
