(** In-memory B-trees.

    Section 4.2: "Node attributes can be indexed directly using
    traditional index structures such as B-trees. This allows for fast
    retrieval of feasible mates and avoids a full scan of all nodes."

    This is a persistent B-tree in the classic style (minimum degree
    [t]; every node holds between [t-1] and [2t-1] keys, the root
    excepted), supporting point lookup, ordered iteration and range
    scans. The SQL-baseline substrate builds its per-column indexes on
    it, mirroring the MySQL B-tree indexes of the paper's experimental
    setup. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (K : ORDERED) : sig
  type 'v t

  type key_bound = Key_unbounded | Key_incl of K.t | Key_excl of K.t

  val empty : ?degree:int -> unit -> 'v t
  (** [degree] is the minimum degree [t >= 2] (default 8, i.e. nodes of
      7–15 keys). *)

  val is_empty : 'v t -> bool
  val cardinal : 'v t -> int
  val find : K.t -> 'v t -> 'v option
  val mem : K.t -> 'v t -> bool

  val add : K.t -> 'v -> 'v t -> 'v t
  (** Insert or replace. *)

  val update : K.t -> ('v option -> 'v option) -> 'v t -> 'v t

  val remove : K.t -> 'v t -> 'v t
  (** Returns the tree unchanged if the key is absent. *)

  val min_binding_opt : 'v t -> (K.t * 'v) option
  val max_binding_opt : 'v t -> (K.t * 'v) option

  val to_seq : 'v t -> (K.t * 'v) Seq.t
  (** Ascending key order. *)

  val range : lo:key_bound -> hi:key_bound -> 'v t -> (K.t * 'v) Seq.t
  (** Ascending bindings within the bounds. *)

  val of_list : (K.t * 'v) list -> 'v t

  val invariants_ok : 'v t -> bool
  (** Structural check used by the property tests: key bounds per node,
      occupancy bounds, uniform leaf depth, global ordering. *)

  val height : 'v t -> int
end
