lib/index/profile_index.ml: Array Gql_graph Graph Hashtbl Neighborhood Profile
