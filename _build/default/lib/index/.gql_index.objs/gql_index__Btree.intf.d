lib/index/btree.mli: Seq
