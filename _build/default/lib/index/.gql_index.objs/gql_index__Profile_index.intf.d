lib/index/profile_index.mli: Gql_graph
