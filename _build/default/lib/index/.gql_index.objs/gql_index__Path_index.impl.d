lib/index/path_index.ml: Array Fun Gql_graph Graph Hashtbl List Option String
