lib/index/path_index.mli: Gql_graph Graph
