lib/index/label_index.mli: Gql_graph
