lib/index/reachability.ml: Array Bytes Char Fun Gql_graph Graph Hashtbl List
