lib/index/label_index.ml: Btree Gql_graph Graph List Seq String
