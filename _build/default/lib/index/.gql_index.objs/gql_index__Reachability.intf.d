lib/index/reachability.mli: Gql_graph Graph
