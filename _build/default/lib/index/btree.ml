module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

(* Persistent B-tree in the classic CLRS style. All update operations
   copy the root-to-leaf path; sibling nodes are shared. *)

module Make (K : ORDERED) = struct
  type key_bound = Key_unbounded | Key_incl of K.t | Key_excl of K.t

  type 'v node = {
    keys : K.t array;
    vals : 'v array;
    kids : 'v node array;  (* [||] at leaves, length = nkeys + 1 otherwise *)
  }

  type 'v t = {
    degree : int;  (* minimum degree t: nodes hold t-1 .. 2t-1 keys *)
    root : 'v node;
    size : int;
  }

  let leaf_node keys vals = { keys; vals; kids = [||] }
  let empty_node = { keys = [||]; vals = [||]; kids = [||] }
  let is_leaf n = Array.length n.kids = 0
  let nkeys n = Array.length n.keys

  let empty ?(degree = 8) () =
    if degree < 2 then invalid_arg "Btree.empty: degree must be >= 2";
    { degree; root = empty_node; size = 0 }

  let is_empty t = t.size = 0
  let cardinal t = t.size

  (* binary search: Ok i if keys.(i) = key, Error i with the child/insert
     position otherwise *)
  let search keys key =
    let rec go lo hi =
      if lo >= hi then Error lo
      else
        let mid = (lo + hi) / 2 in
        let c = K.compare key keys.(mid) in
        if c = 0 then Ok mid else if c < 0 then go lo mid else go (mid + 1) hi
    in
    go 0 (Array.length keys)

  let rec find_node key n =
    match search n.keys key with
    | Ok i -> Some n.vals.(i)
    | Error i -> if is_leaf n then None else find_node key n.kids.(i)

  let find key t = find_node key t.root
  let mem key t = Option.is_some (find key t)

  (* --- array surgery (copying) --- *)

  let arr_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

  let arr_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  let arr_set a i x =
    let a' = Array.copy a in
    a'.(i) <- x;
    a'

  (* --- insertion --- *)

  (* Split full child [c] (2t-1 keys) of its parent; returns
     (left, median key, median val, right). *)
  let split_full degree c =
    let t = degree in
    let left =
      {
        keys = Array.sub c.keys 0 (t - 1);
        vals = Array.sub c.vals 0 (t - 1);
        kids = (if is_leaf c then [||] else Array.sub c.kids 0 t);
      }
    and right =
      {
        keys = Array.sub c.keys t (t - 1);
        vals = Array.sub c.vals t (t - 1);
        kids = (if is_leaf c then [||] else Array.sub c.kids t t);
      }
    in
    (left, c.keys.(t - 1), c.vals.(t - 1), right)

  (* insert into a node known not to be full; returns (node, replaced) *)
  let rec insert_nonfull degree n key v =
    match search n.keys key with
    | Ok i -> ({ n with vals = arr_set n.vals i v }, true)
    | Error i ->
      if is_leaf n then
        (leaf_node (arr_insert n.keys i key) (arr_insert n.vals i v), false)
      else begin
        let child = n.kids.(i) in
        if nkeys child = (2 * degree) - 1 then begin
          let l, mk, mv, r = split_full degree child in
          let n =
            {
              keys = arr_insert n.keys i mk;
              vals = arr_insert n.vals i mv;
              kids = arr_insert (arr_set n.kids i l) (i + 1) r;
            }
          in
          (* re-dispatch around the promoted median *)
          let c = K.compare key mk in
          if c = 0 then ({ n with vals = arr_set n.vals i v }, true)
          else
            let j = if c < 0 then i else i + 1 in
            let child', replaced = insert_nonfull degree n.kids.(j) key v in
            ({ n with kids = arr_set n.kids j child' }, replaced)
        end
        else
          let child', replaced = insert_nonfull degree child key v in
          ({ n with kids = arr_set n.kids i child' }, replaced)
      end

  let add key v t =
    let degree = t.degree in
    let root =
      if nkeys t.root = (2 * degree) - 1 then begin
        let l, mk, mv, r = split_full degree t.root in
        { keys = [| mk |]; vals = [| mv |]; kids = [| l; r |] }
      end
      else t.root
    in
    let root', replaced = insert_nonfull degree root key v in
    { t with root = root'; size = (if replaced then t.size else t.size + 1) }

  (* --- deletion (CLRS 18.3) --- *)

  let rec max_binding_node n =
    if is_leaf n then (n.keys.(nkeys n - 1), n.vals.(nkeys n - 1))
    else max_binding_node n.kids.(Array.length n.kids - 1)

  let rec min_binding_node n =
    if is_leaf n then (n.keys.(0), n.vals.(0))
    else min_binding_node n.kids.(0)

  (* Ensure kids.(i) of [n] has >= t keys before descending, by borrowing
     from a sibling or merging. Returns (n', i') where i' addresses the
     child now covering the same key range. *)
  let fix_child degree n i =
    let t = degree in
    let c = n.kids.(i) in
    if nkeys c >= t then (n, i)
    else if i > 0 && nkeys n.kids.(i - 1) >= t then begin
      (* borrow from left sibling through separator i-1 *)
      let l = n.kids.(i - 1) in
      let ln = nkeys l in
      let c' =
        {
          keys = arr_insert c.keys 0 n.keys.(i - 1);
          vals = arr_insert c.vals 0 n.vals.(i - 1);
          kids =
            (if is_leaf c then [||] else arr_insert c.kids 0 l.kids.(ln));
        }
      and l' =
        {
          keys = Array.sub l.keys 0 (ln - 1);
          vals = Array.sub l.vals 0 (ln - 1);
          kids = (if is_leaf l then [||] else Array.sub l.kids 0 ln);
        }
      in
      let n' =
        {
          keys = arr_set n.keys (i - 1) l.keys.(ln - 1);
          vals = arr_set n.vals (i - 1) l.vals.(ln - 1);
          kids = arr_set (arr_set n.kids (i - 1) l') i c';
        }
      in
      (n', i)
    end
    else if i < nkeys n && nkeys n.kids.(i + 1) >= t then begin
      (* borrow from right sibling through separator i *)
      let r = n.kids.(i + 1) in
      let c' =
        {
          keys = arr_insert c.keys (nkeys c) n.keys.(i);
          vals = arr_insert c.vals (nkeys c) n.vals.(i);
          kids =
            (if is_leaf c then [||]
             else arr_insert c.kids (Array.length c.kids) r.kids.(0));
        }
      and r' =
        {
          keys = arr_remove r.keys 0;
          vals = arr_remove r.vals 0;
          kids = (if is_leaf r then [||] else arr_remove r.kids 0);
        }
      in
      let n' =
        {
          keys = arr_set n.keys i r.keys.(0);
          vals = arr_set n.vals i r.vals.(0);
          kids = arr_set (arr_set n.kids i c') (i + 1) r';
        }
      in
      (n', i)
    end
    else begin
      (* merge with a sibling: child i and i+1 around separator i (or
         i-1 and i around separator i-1) *)
      let j = if i > 0 then i - 1 else i in
      let l = n.kids.(j) and r = n.kids.(j + 1) in
      let merged =
        {
          keys = Array.concat [ l.keys; [| n.keys.(j) |]; r.keys ];
          vals = Array.concat [ l.vals; [| n.vals.(j) |]; r.vals ];
          kids = (if is_leaf l then [||] else Array.append l.kids r.kids);
        }
      in
      let n' =
        {
          keys = arr_remove n.keys j;
          vals = arr_remove n.vals j;
          kids = arr_remove (arr_set n.kids j merged) (j + 1);
        }
      in
      (n', j)
    end

  (* delete [key] from subtree rooted at [n]; n is guaranteed to have
     >= t keys (or be the root). Returns the new node. The key is known
     to be present in the tree. *)
  let rec delete_node degree n key =
    match search n.keys key with
    | Ok i when is_leaf n ->
      leaf_node (arr_remove n.keys i) (arr_remove n.vals i)
    | Ok i ->
      let t = degree in
      if nkeys n.kids.(i) >= t then begin
        let pk, pv = max_binding_node n.kids.(i) in
        let child' = delete_node degree n.kids.(i) pk in
        {
          keys = arr_set n.keys i pk;
          vals = arr_set n.vals i pv;
          kids = arr_set n.kids i child';
        }
      end
      else if nkeys n.kids.(i + 1) >= t then begin
        let sk, sv = min_binding_node n.kids.(i + 1) in
        let child' = delete_node degree n.kids.(i + 1) sk in
        {
          keys = arr_set n.keys i sk;
          vals = arr_set n.vals i sv;
          kids = arr_set n.kids (i + 1) child';
        }
      end
      else begin
        (* both children minimal: merge them around the key, recurse *)
        let l = n.kids.(i) and r = n.kids.(i + 1) in
        let merged =
          {
            keys = Array.concat [ l.keys; [| n.keys.(i) |]; r.keys ];
            vals = Array.concat [ l.vals; [| n.vals.(i) |]; r.vals ];
            kids = (if is_leaf l then [||] else Array.append l.kids r.kids);
          }
        in
        let merged' = delete_node degree merged key in
        {
          keys = arr_remove n.keys i;
          vals = arr_remove n.vals i;
          kids = arr_remove (arr_set n.kids i merged') (i + 1);
        }
      end
    | Error i ->
      if is_leaf n then n (* absent; caller checked, defensive *)
      else begin
        let n, i = fix_child degree n i in
        (* after fixing, the key may now sit in the separator (merge
           pulled it up is impossible — separators only move down — but a
           borrow may have rotated it into n.keys) *)
        match search n.keys key with
        | Ok _ -> delete_node degree n key
        | Error _ ->
          let child' = delete_node degree n.kids.(i) key in
          { n with kids = arr_set n.kids i child' }
      end

  let remove key t =
    if not (mem key t) then t
    else begin
      let root = delete_node t.degree t.root key in
      let root =
        if nkeys root = 0 && not (is_leaf root) then root.kids.(0) else root
      in
      { t with root; size = t.size - 1 }
    end

  let update key f t =
    match f (find key t) with
    | Some v -> add key v t
    | None -> remove key t

  let min_binding_opt t = if t.size = 0 then None else Some (min_binding_node t.root)
  let max_binding_opt t = if t.size = 0 then None else Some (max_binding_node t.root)

  (* --- iteration --- *)

  let rec seq_node n () =
    if nkeys n = 0 then Seq.Nil
    else if is_leaf n then
      Array.to_seq (Array.mapi (fun i k -> (k, n.vals.(i))) n.keys) ()
    else begin
      let rec emit i () =
        if i < nkeys n then
          Seq.append (seq_node n.kids.(i))
            (Seq.cons (n.keys.(i), n.vals.(i)) (emit (i + 1)))
            ()
        else seq_node n.kids.(i) ()
      in
      emit 0 ()
    end

  let to_seq t = seq_node t.root

  let above lo k =
    match lo with
    | Key_unbounded -> true
    | Key_incl b -> K.compare k b >= 0
    | Key_excl b -> K.compare k b > 0

  let below hi k =
    match hi with
    | Key_unbounded -> true
    | Key_incl b -> K.compare k b <= 0
    | Key_excl b -> K.compare k b < 0

  let range ~lo ~hi t =
    (* A subtree whose keys all lie strictly below some separator [s]
       can be skipped when [s <= lo]; symmetrically for [hi]. [clo] /
       [chi] are the subtree's exclusive key bounds inherited from the
       separators above it ([None] = unbounded). *)
    let subtree_disjoint clo chi =
      (match clo, hi with
      | Some l, Key_incl h -> K.compare l h >= 0
      | Some l, Key_excl h -> K.compare l h >= 0
      | _ -> false)
      ||
      match chi, lo with
      | Some h, Key_incl l -> K.compare h l <= 0
      | Some h, Key_excl l -> K.compare h l <= 0
      | _ -> false
    in
    let rec seq n clo chi () =
      if nkeys n = 0 || subtree_disjoint clo chi then Seq.Nil
      else if is_leaf n then
        (Array.to_seq (Array.mapi (fun i k -> (k, n.vals.(i))) n.keys)
        |> Seq.filter (fun (k, _) -> above lo k && below hi k))
          ()
      else begin
        let k = nkeys n in
        let rec emit i () =
          if i > k then Seq.Nil
          else begin
            let child_lo = if i = 0 then clo else Some n.keys.(i - 1) in
            let child_hi = if i = k then chi else Some n.keys.(i) in
            let child = seq n.kids.(i) child_lo child_hi in
            let tail =
              if i = k then Seq.empty
              else if above lo n.keys.(i) && below hi n.keys.(i) then
                Seq.cons (n.keys.(i), n.vals.(i)) (emit (i + 1))
              else emit (i + 1)
            in
            Seq.append child tail ()
          end
        in
        emit 0 ()
      end
    in
    seq t.root None None

  let of_list l = List.fold_left (fun t (k, v) -> add k v t) (empty ()) l

  (* --- invariants --- *)

  let invariants_ok t =
    let degree = t.degree in
    let ok = ref true in
    let check b = if not b then ok := false in
    (* returns depth of subtree *)
    let rec go n ~is_root ~lo ~hi =
      let k = nkeys n in
      if not is_root then check (k >= degree - 1);
      check (k <= (2 * degree) - 1);
      (* keys sorted strictly and within bounds *)
      for i = 0 to k - 2 do
        check (K.compare n.keys.(i) n.keys.(i + 1) < 0)
      done;
      Array.iter (fun key -> check (above lo key && below hi key)) n.keys;
      if is_leaf n then 1
      else begin
        check (Array.length n.kids = k + 1);
        let depths =
          Array.mapi
            (fun i c ->
              let lo' = if i = 0 then lo else Key_excl n.keys.(i - 1) in
              let hi' = if i = k then hi else Key_excl n.keys.(i) in
              go c ~is_root:false ~lo:lo' ~hi:hi')
            n.kids
        in
        Array.iter (fun d -> check (d = depths.(0))) depths;
        1 + depths.(0)
      end
    in
    if t.size > 0 || nkeys t.root > 0 then
      ignore (go t.root ~is_root:true ~lo:Key_unbounded ~hi:Key_unbounded);
    check (List.length (List.of_seq (to_seq t)) = t.size);
    !ok

  let height t =
    let rec go n = if is_leaf n then 1 else 1 + go n.kids.(0) in
    if t.size = 0 then 0 else go t.root
end
