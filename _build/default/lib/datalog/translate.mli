(** The GraphQL → Datalog translation (Theorems 4.5/4.6).

    Graphs become facts (Figure 4.14): [graph('G')], [node('G','G.v1')],
    [edge('G','G.e1','G.v1','G.v2')] — undirected edges written in both
    orientations — and [attribute(id, name, value)] for graph, node and
    edge attributes.

    A flat pattern becomes a rule (Figure 4.15): the body is the
    conjunction of the motif's constituent elements plus comparison
    built-ins for the predicates, with pairwise inequalities between
    node variables for the injectivity of Definition 4.2. The pattern
    matches the graph iff the rule derives a [match_...] fact; the
    distinct derived tuples are exactly the embeddings. *)

open Gql_graph

val load_graph : Datalog.db -> name:string -> Graph.t -> unit

val pattern_rule : ?head_name:string -> Gql_matcher.Flat_pattern.t -> Datalog.rule
(** Supports patterns whose predicates are conjunctions of comparisons
    between a single attribute path and a literal (the Figure 4.15
    form). Raises [Invalid_argument] otherwise. *)

val count_matches : Graph.t -> Gql_matcher.Flat_pattern.t -> int
(** Load, translate, solve, count distinct embeddings. *)

val reachability_rules : edge_name:string -> reach_name:string -> Datalog.rule list
(** The classic recursive program (GraphQL's recursive path motifs land
    in this fragment): [reach(X,Y) :- edge(G,E,X,Y)] and
    [reach(X,Z) :- reach(X,Y), edge(G,E,Y,Z)]. *)
