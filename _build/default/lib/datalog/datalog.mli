(** A small Datalog engine.

    Supports positive rules with comparison built-ins, evaluated
    bottom-up (semi-naive) to fixpoint — enough to express the
    Theorem 4.6 translation of GraphQL into Datalog, including
    recursive rules (paths, reachability). Negation is not supported;
    the translation does not need it. *)

open Gql_graph

type term =
  | Var of string
  | Const of Value.t

type atom = {
  name : string;
  args : term list;
}

type cmp_op = Ceq | Cne | Clt | Cle | Cgt | Cge

type literal =
  | Pos of atom
  | Cmp of cmp_op * term * term
      (** built-in; both sides must be bound when reached
          (left-to-right body evaluation) *)

type rule = {
  head : atom;
  body : literal list;
}

val atom : string -> term list -> atom
val fact_atom : string -> Value.t list -> atom

type db

val create : unit -> db

val add_fact : db -> string -> Value.t list -> unit
val add_rule : db -> rule -> unit

exception Unsafe_rule of string
(** Raised at evaluation when a head variable is unbound by the body,
    or a comparison is reached with an unbound side. *)

val solve : db -> unit
(** Evaluate all rules to fixpoint (idempotent; re-run after adding
    facts or rules). *)

val query : db -> atom -> Value.t list list
(** All bindings of the atom's argument terms, after {!solve}. Constant
    arguments filter; variables project (repeated variables must agree). *)

val holds : db -> string -> Value.t list -> bool
val n_facts : db -> string -> int
