open Gql_graph

type term =
  | Var of string
  | Const of Value.t

type atom = {
  name : string;
  args : term list;
}

type cmp_op = Ceq | Cne | Clt | Cle | Cgt | Cge

type literal =
  | Pos of atom
  | Cmp of cmp_op * term * term

type rule = {
  head : atom;
  body : literal list;
}

let atom name args = { name; args }
let fact_atom name vals = { name; args = List.map (fun v -> Const v) vals }

exception Unsafe_rule of string

(* fact store: predicate name -> set of tuples *)
type db = {
  facts : (string, (Value.t list, unit) Hashtbl.t) Hashtbl.t;
  mutable rules : rule list;
}

let create () = { facts = Hashtbl.create 16; rules = [] }

let relation db name =
  match Hashtbl.find_opt db.facts name with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 64 in
    Hashtbl.add db.facts name h;
    h

let add_fact db name vals =
  Hashtbl.replace (relation db name) vals ()

let add_rule db rule = db.rules <- db.rules @ [ rule ]

type binding = (string * Value.t) list

let subst (env : binding) = function
  | Const v -> Some v
  | Var x -> List.assoc_opt x env

let unify_args env args tuple =
  let rec go env args tuple =
    match args, tuple with
    | [], [] -> Some env
    | arg :: args, v :: tuple ->
      (match subst env arg with
      | Some bound -> if Value.equal bound v then go env args tuple else None
      | None ->
        (match arg with
        | Var x -> go ((x, v) :: env) args tuple
        | Const _ -> None))
    | _ -> None
  in
  go env args tuple

let cmp_holds op a b =
  let c = Value.compare a b in
  match op with
  | Ceq -> c = 0
  | Cne -> c <> 0
  | Clt -> c < 0
  | Cle -> c <= 0
  | Cgt -> c > 0
  | Cge -> c >= 0

(* evaluate the rule body left-to-right over the fact store, calling
   [emit] with each complete binding *)
let eval_rule db rule emit =
  let rec go env = function
    | [] -> emit env
    | Pos a :: rest ->
      Hashtbl.iter
        (fun tuple () ->
          match unify_args env a.args tuple with
          | Some env' -> go env' rest
          | None -> ())
        (relation db a.name)
    | Cmp (op, l, r) :: rest ->
      let value side t =
        match subst env t with
        | Some v -> v
        | None ->
          raise
            (Unsafe_rule
               (Printf.sprintf "comparison %s operand unbound in rule for %s" side
                  rule.head.name))
      in
      if cmp_holds op (value "left" l) (value "right" r) then go env rest
  in
  go [] rule.body

let head_tuple rule env =
  List.map
    (fun t ->
      match subst env t with
      | Some v -> v
      | None ->
        raise
          (Unsafe_rule
             (Printf.sprintf "head variable unbound in rule for %s" rule.head.name)))
    rule.head.args

let solve db =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun rule ->
        let rel = relation db rule.head.name in
        let fresh = ref [] in
        eval_rule db rule (fun env ->
            let tuple = head_tuple rule env in
            if not (Hashtbl.mem rel tuple) then fresh := tuple :: !fresh);
        List.iter
          (fun tuple ->
            if not (Hashtbl.mem rel tuple) then begin
              Hashtbl.replace rel tuple ();
              changed := true
            end)
          !fresh)
      db.rules
  done

let query db a =
  let results = ref [] in
  Hashtbl.iter
    (fun tuple () ->
      match unify_args [] a.args tuple with
      | Some _ -> results := tuple :: !results
      | None -> ())
    (relation db a.name);
  !results

let holds db name vals = Hashtbl.mem (relation db name) vals
let n_facts db name = Hashtbl.length (relation db name)
