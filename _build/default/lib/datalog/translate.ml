open Gql_graph
module Flat_pattern = Gql_matcher.Flat_pattern

let node_id gname v = Printf.sprintf "%s.v%d" gname v
let edge_id gname e = Printf.sprintf "%s.e%d" gname e

let add_attrs db id tuple =
  List.iter
    (fun (k, v) -> Datalog.add_fact db "attribute" [ Value.Str id; Value.Str k; v ])
    (Tuple.bindings tuple);
  match Tuple.tag tuple with
  | Some tag ->
    Datalog.add_fact db "attribute"
      [ Value.Str id; Value.Str "tag"; Value.Str tag ]
  | None -> ()

let load_graph db ~name g =
  Datalog.add_fact db "graph" [ Value.Str name ];
  add_attrs db name (Graph.tuple g);
  Graph.iter_nodes g ~f:(fun v ->
      let id = node_id name v in
      Datalog.add_fact db "node" [ Value.Str name; Value.Str id ];
      add_attrs db id (Graph.node_tuple g v);
      (* labels double as attributes for pattern predicates *)
      Datalog.add_fact db "attribute"
        [ Value.Str id; Value.Str "label"; Value.Str (Graph.label g v) ]);
  Graph.iter_edges g ~f:(fun i e ->
      let id = edge_id name i in
      let s = Value.Str (node_id name e.Graph.src) in
      let d = Value.Str (node_id name e.Graph.dst) in
      Datalog.add_fact db "edge" [ Value.Str name; Value.Str id; s; d ];
      if not (Graph.directed g) then
        Datalog.add_fact db "edge" [ Value.Str name; Value.Str id; d; s ];
      add_attrs db id e.Graph.etuple)

let cmp_of_binop = function
  | Pred.Eq -> Datalog.Ceq
  | Pred.Ne -> Datalog.Cne
  | Pred.Lt -> Datalog.Clt
  | Pred.Le -> Datalog.Cle
  | Pred.Gt -> Datalog.Cgt
  | Pred.Ge -> Datalog.Cge
  | Pred.And | Pred.Or | Pred.Add | Pred.Sub | Pred.Mul | Pred.Div ->
    invalid_arg "Translate: only comparison predicates are supported"

(* translate the conjuncts of [pred], whose attribute paths are either
   [attr] (local to [self_var]) or [var.attr]; emits attribute atoms
   binding temporaries plus comparison literals *)
let literals_of_pred ~fresh ~var_of_name ~self pred =
  List.concat_map
    (fun conjunct ->
      match conjunct with
      | Pred.Binop (op, lhs, rhs) ->
        let side = function
          | Pred.Lit v -> ([], Datalog.Const v)
          | Pred.Attr path ->
            let subject, attr =
              match path with
              | [ attr ] ->
                (match self with
                | Some v -> (v, attr)
                | None -> invalid_arg "Translate: bare attribute with no subject")
              | [ name; attr ] -> (var_of_name name, attr)
              | _ -> invalid_arg "Translate: deep attribute paths unsupported"
            in
            let tmp = fresh () in
            ( [ Datalog.Pos
                  (Datalog.atom "attribute"
                     [ subject; Datalog.Const (Value.Str attr); Datalog.Var tmp ]) ],
              Datalog.Var tmp )
          | _ -> invalid_arg "Translate: only comparisons of attributes and literals"
        in
        let latoms, lterm = side lhs in
        let ratoms, rterm = side rhs in
        latoms @ ratoms @ [ Datalog.Cmp (cmp_of_binop op, lterm, rterm) ]
      | Pred.True -> []
      | _ -> invalid_arg "Translate: unsupported predicate form")
    (Pred.conjuncts pred)

let pattern_rule ?(head_name = "match_p") p =
  let k = Flat_pattern.size p in
  let pg = p.Flat_pattern.structure in
  let gvar = Datalog.Var "G" in
  let nvar u = Datalog.Var (Printf.sprintf "V%d" u) in
  let evar i = Datalog.Var (Printf.sprintf "E%d" i) in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "T%d" !counter
  in
  let var_of_name name =
    (* resolve a pattern variable name to its Datalog variable *)
    let rec find u =
      if u >= k then
        match Graph.edge_by_name pg name with
        | Some e -> evar e
        | None -> invalid_arg ("Translate: unknown pattern variable " ^ name)
      else if Flat_pattern.var_name p u = name then nvar u
      else find (u + 1)
    in
    find 0
  in
  let node_atoms =
    List.init k (fun u -> Datalog.Pos (Datalog.atom "node" [ gvar; nvar u ]))
  in
  let edge_atoms =
    List.init (Graph.n_edges pg) (fun i ->
        let e = Graph.edge pg i in
        Datalog.Pos
          (Datalog.atom "edge" [ gvar; evar i; nvar e.Graph.src; nvar e.Graph.dst ]))
  in
  let node_preds =
    List.concat
      (List.init k (fun u ->
           literals_of_pred ~fresh ~var_of_name ~self:(Some (nvar u))
             p.Flat_pattern.node_preds.(u)))
  in
  (* constant attributes on pattern tuples are implicit equalities *)
  let tuple_atoms var tuple =
    let attr_atom (name, v) =
      Datalog.Pos
        (Datalog.atom "attribute" [ var; Datalog.Const (Value.Str name); Datalog.Const v ])
    in
    List.map attr_atom (Tuple.bindings tuple)
    @
    match Tuple.tag tuple with
    | Some tag -> [ attr_atom ("tag", Value.Str tag) ]
    | None -> []
  in
  let label_preds =
    List.concat (List.init k (fun u -> tuple_atoms (nvar u) (Graph.node_tuple pg u)))
    @ List.concat
        (List.init (Graph.n_edges pg) (fun i ->
             tuple_atoms (evar i) (Graph.edge pg i).Graph.etuple))
  in
  let edge_preds =
    List.concat
      (List.init (Graph.n_edges pg) (fun i ->
           literals_of_pred ~fresh ~var_of_name ~self:(Some (evar i))
             p.Flat_pattern.edge_preds.(i)))
  in
  let global_preds =
    literals_of_pred ~fresh ~var_of_name ~self:None p.Flat_pattern.global_pred
  in
  let injective =
    List.concat
      (List.init k (fun u ->
           List.filter_map
             (fun v ->
               if v > u then Some (Datalog.Cmp (Datalog.Cne, nvar u, nvar v))
               else None)
             (List.init k Fun.id)))
  in
  {
    Datalog.head = Datalog.atom head_name (gvar :: List.init k nvar);
    body =
      (Datalog.Pos (Datalog.atom "graph" [ gvar ]) :: node_atoms)
      @ edge_atoms @ label_preds @ node_preds @ edge_preds @ global_preds
      @ injective;
  }

let count_matches g p =
  let db = Datalog.create () in
  load_graph db ~name:"G" g;
  Datalog.add_rule db (pattern_rule p);
  Datalog.solve db;
  Datalog.n_facts db "match_p"

let reachability_rules ~edge_name ~reach_name =
  let v x = Datalog.Var x in
  [
    {
      Datalog.head = Datalog.atom reach_name [ v "X"; v "Y" ];
      body = [ Datalog.Pos (Datalog.atom edge_name [ v "G"; v "E"; v "X"; v "Y" ]) ];
    };
    {
      Datalog.head = Datalog.atom reach_name [ v "X"; v "Z" ];
      body =
        [
          Datalog.Pos (Datalog.atom reach_name [ v "X"; v "Y" ]);
          Datalog.Pos (Datalog.atom edge_name [ v "G"; v "E"; v "Y"; v "Z" ]);
        ];
    };
  ]
