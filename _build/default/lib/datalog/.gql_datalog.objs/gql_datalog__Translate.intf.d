lib/datalog/translate.mli: Datalog Gql_graph Gql_matcher Graph
