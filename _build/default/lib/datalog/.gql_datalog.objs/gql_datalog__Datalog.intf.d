lib/datalog/datalog.mli: Gql_graph Value
