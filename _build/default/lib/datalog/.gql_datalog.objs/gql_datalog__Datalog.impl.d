lib/datalog/datalog.ml: Gql_graph Hashtbl List Printf Value
