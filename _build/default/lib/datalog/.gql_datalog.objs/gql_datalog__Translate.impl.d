lib/datalog/translate.ml: Array Datalog Fun Gql_graph Gql_matcher Graph List Pred Printf Tuple Value
