(** A disk-backed collection of graphs.

    The §7 "physical storage" extension: graphs are appended as
    length-prefixed {!Codec} records to a log of 4 KiB pages behind an
    LRU {!Buffer_pool}; the page-0 header records the graph count and
    the log tail so a reopened store rebuilds its offset directory with
    one sequential scan.

    The store targets the "large collection of small graphs" database
    category (chemical compounds, DBLP papers); a single large graph is
    simply a one-record store. *)

open Gql_graph

type t

val create : ?pool_capacity:int -> string -> t
(** Create or truncate a store file. *)

val open_existing : ?pool_capacity:int -> string -> t
(** Reopen; raises [Codec.Corrupt] or [Failure] on malformed files. *)

val close : t -> unit
(** Flushes. The handle must not be used afterwards. *)

val flush : t -> unit

val add_graph : t -> Graph.t -> int
(** Append; returns the graph's id (dense, in insertion order). *)

val n_graphs : t -> int
val get_graph : t -> int -> Graph.t
val iter : t -> f:(int -> Graph.t -> unit) -> unit
val to_list : t -> Graph.t list
val pool_stats : t -> Buffer_pool.stats
