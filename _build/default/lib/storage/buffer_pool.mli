(** An LRU buffer pool over {!Pager}.

    Pages are cached in fixed-capacity frames; reads hit the cache,
    mutations go through {!with_page} + dirty marking, and dirty frames
    are written back on eviction or {!flush}. Hit/miss/eviction counters
    support the storage benchmarks. *)

type t

val create : ?capacity:int -> Pager.t -> t
(** Default capacity 256 frames (1 MiB). *)

val pager : t -> Pager.t

val get : t -> int -> bytes
(** The cached frame for the page — the caller must not mutate it
    without calling {!mark_dirty}. *)

val mark_dirty : t -> int -> unit
(** [Invalid_argument] if the page is not resident. *)

val alloc : t -> int
(** Allocate a fresh page and cache it (dirty). *)

val flush : t -> unit
(** Write back all dirty frames (the pool stays warm). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats
