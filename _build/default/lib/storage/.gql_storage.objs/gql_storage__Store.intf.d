lib/storage/store.mli: Buffer_pool Gql_graph Graph
