lib/storage/pager.mli:
