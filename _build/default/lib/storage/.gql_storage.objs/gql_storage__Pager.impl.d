lib/storage/pager.ml: Bytes Printf Unix
