lib/storage/codec.ml: Buffer Char Format Gql_graph Graph Int64 List String Tuple Value
