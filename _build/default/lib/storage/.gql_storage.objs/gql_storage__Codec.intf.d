lib/storage/codec.mli: Buffer Gql_graph
