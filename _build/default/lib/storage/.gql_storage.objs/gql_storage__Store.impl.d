lib/storage/store.ml: Array Buffer_pool Bytes Codec Int32 Int64 List Pager String
