let magic = "GQLSTOR1"

type t = {
  pool : Buffer_pool.t;
  mutable offsets : (int * int) array;  (* (byte offset, length), grown by doubling *)
  mutable n : int;
  mutable tail : int;  (* byte offset of the end of the log *)
  mutable closed : bool;
}

let push_offset t entry =
  if t.n = Array.length t.offsets then begin
    let bigger = Array.make (max 16 (2 * t.n)) (0, 0) in
    Array.blit t.offsets 0 bigger 0 t.n;
    t.offsets <- bigger
  end;
  t.offsets.(t.n) <- entry

let header_size = Pager.page_size
let check t = if t.closed then invalid_arg "Store: already closed"

(* --- header --- *)

let write_header t =
  let page = Buffer_pool.get t.pool 0 in
  Bytes.blit_string magic 0 page 0 8;
  Bytes.set_int64_le page 8 (Int64.of_int t.n);
  Bytes.set_int64_le page 16 (Int64.of_int t.tail);
  Buffer_pool.mark_dirty t.pool 0

let read_header pool =
  let page = Buffer_pool.get pool 0 in
  if Bytes.sub_string page 0 8 <> magic then
    failwith "Store.open_existing: bad magic";
  let n = Int64.to_int (Bytes.get_int64_le page 8) in
  let tail = Int64.to_int (Bytes.get_int64_le page 16) in
  (n, tail)

(* --- byte-level access through the pool --- *)

let read_bytes t ~off ~len =
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let pos = off + !copied in
    let page_id = pos / Pager.page_size in
    let in_page = pos mod Pager.page_size in
    let chunk = min (len - !copied) (Pager.page_size - in_page) in
    let page = Buffer_pool.get t.pool page_id in
    Bytes.blit page in_page out !copied chunk;
    copied := !copied + chunk
  done;
  Bytes.unsafe_to_string out

let write_bytes t ~off s =
  let len = String.length s in
  let pager = Buffer_pool.pager t.pool in
  (* make sure every touched page exists *)
  let last_page = (off + len - 1) / Pager.page_size in
  while Pager.n_pages pager <= last_page do
    ignore (Buffer_pool.alloc t.pool)
  done;
  let copied = ref 0 in
  while !copied < len do
    let pos = off + !copied in
    let page_id = pos / Pager.page_size in
    let in_page = pos mod Pager.page_size in
    let chunk = min (len - !copied) (Pager.page_size - in_page) in
    let page = Buffer_pool.get t.pool page_id in
    Bytes.blit_string s !copied page in_page chunk;
    Buffer_pool.mark_dirty t.pool page_id;
    copied := !copied + chunk
  done

(* records: 4-byte little-endian length + payload *)

let read_record t off =
  let len_bytes = read_bytes t ~off ~len:4 in
  let len = Int32.to_int (String.get_int32_le len_bytes 0) in
  if len < 0 then raise (Codec.Corrupt "negative record length");
  (read_bytes t ~off:(off + 4) ~len, off + 4 + len)

let write_record t off payload =
  let len_bytes = Bytes.create 4 in
  Bytes.set_int32_le len_bytes 0 (Int32.of_int (String.length payload));
  write_bytes t ~off (Bytes.unsafe_to_string len_bytes);
  write_bytes t ~off:(off + 4) payload;
  off + 4 + String.length payload

(* --- lifecycle --- *)

let create ?pool_capacity path =
  let pager = Pager.create path in
  let pool = Buffer_pool.create ?capacity:pool_capacity pager in
  ignore (Buffer_pool.alloc pool) (* header page *);
  let t = { pool; offsets = [||]; n = 0; tail = header_size; closed = false } in
  write_header t;
  t

let open_existing ?pool_capacity path =
  let pager = Pager.open_existing path in
  let pool = Buffer_pool.create ?capacity:pool_capacity pager in
  let n, tail = read_header pool in
  let t = { pool; offsets = Array.make (max 16 n) (0, 0); n = 0; tail; closed = false } in
  (* rebuild the directory with a sequential scan of the log *)
  let off = ref header_size in
  for _ = 1 to n do
    let payload, next = read_record t !off in
    push_offset t (!off, String.length payload);
    t.n <- t.n + 1;
    off := next
  done;
  if !off <> tail then failwith "Store.open_existing: log tail mismatch";
  t

let flush t =
  check t;
  write_header t;
  Buffer_pool.flush t.pool

let close t =
  if not t.closed then begin
    flush t;
    Pager.close (Buffer_pool.pager t.pool);
    t.closed <- true
  end

(* --- operations --- *)

let add_graph t g =
  check t;
  let payload = Codec.graph_to_string g in
  let id = t.n in
  let off = t.tail in
  t.tail <- write_record t off payload;
  push_offset t (off, String.length payload);
  t.n <- id + 1;
  write_header t;
  id

let n_graphs t = t.n

let offset_of t i =
  if i < 0 || i >= t.n then invalid_arg "Store.get_graph: id out of range";
  t.offsets.(i)

let get_graph t i =
  check t;
  let off, len = offset_of t i in
  let payload = read_bytes t ~off:(off + 4) ~len in
  Codec.graph_of_string payload

let iter t ~f =
  check t;
  for i = 0 to t.n - 1 do
    f i (get_graph t i)
  done

let to_list t = List.init t.n (get_graph t)

let pool_stats t = Buffer_pool.stats t.pool
