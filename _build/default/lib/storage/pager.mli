(** Fixed-size page I/O over a file.

    The lowest layer of the §7 storage substrate: a file is an array of
    4 KiB pages addressed by page id. No caching here — that is
    {!Buffer_pool}'s job. *)

type t

val page_size : int
(** 4096 bytes. *)

val create : string -> t
(** Create or truncate the file. *)

val open_existing : string -> t
(** Raises [Sys_error] if missing, [Failure] if not page-aligned. *)

val close : t -> unit
val n_pages : t -> int

val alloc : t -> int
(** Append a zeroed page; returns its id. *)

val read : t -> int -> bytes
(** A fresh [page_size] buffer with the page's contents. *)

val write : t -> int -> bytes -> unit
(** [Invalid_argument] unless the buffer is exactly one page and the id
    is allocated. *)

val sync : t -> unit
(** fsync. *)
