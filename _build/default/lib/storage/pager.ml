type t = {
  fd : Unix.file_descr;
  mutable pages : int;
  mutable closed : bool;
}

let page_size = 4096

let create path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  { fd; pages = 0; closed = false }

let open_existing path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod page_size <> 0 then begin
    Unix.close fd;
    failwith (Printf.sprintf "Pager.open_existing: %s is not page aligned" path)
  end;
  { fd; pages = size / page_size; closed = false }

let check t = if t.closed then invalid_arg "Pager: already closed"

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

let n_pages t = t.pages

let pwrite t page buf =
  ignore (Unix.lseek t.fd (page * page_size) Unix.SEEK_SET);
  let written = Unix.write t.fd buf 0 page_size in
  if written <> page_size then failwith "Pager: short write"

let alloc t =
  check t;
  let id = t.pages in
  pwrite t id (Bytes.make page_size '\000');
  t.pages <- id + 1;
  id

let read t page =
  check t;
  if page < 0 || page >= t.pages then invalid_arg "Pager.read: page out of range";
  ignore (Unix.lseek t.fd (page * page_size) Unix.SEEK_SET);
  let buf = Bytes.make page_size '\000' in
  let rec fill off =
    if off < page_size then begin
      let n = Unix.read t.fd buf off (page_size - off) in
      if n = 0 then failwith "Pager: short read" else fill (off + n)
    end
  in
  fill 0;
  buf

let write t page buf =
  check t;
  if Bytes.length buf <> page_size then invalid_arg "Pager.write: bad buffer size";
  if page < 0 || page >= t.pages then invalid_arg "Pager.write: page out of range";
  pwrite t page buf

let sync t =
  check t;
  Unix.fsync t.fd
