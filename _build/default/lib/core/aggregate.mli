(** Aggregation and ordering over graph collections.

    §7 lists "operators such as ordering (ranking), aggregation (OLAP
    processing)" as open directions for the algebra; this module
    provides the collection-level versions. Keys and scores are
    predicate-language expressions evaluated against each entry — on a
    matched graph the pattern variables are in scope ([P.v1.name]
    style paths work through {!Matched.env}), on a plain graph its own
    tuple is. *)

open Gql_graph

val eval_key : Algebra.entry -> Pred.t -> Value.t
(** [Value.Null] when the expression does not evaluate. *)

val group_by : key:Pred.t -> Algebra.collection -> (Value.t * Algebra.collection) list
(** Groups in first-seen key order. *)

val count_by : key:Pred.t -> Algebra.collection -> (Value.t * int) list

val order_by :
  ?descending:bool -> key:Pred.t -> Algebra.collection -> Algebra.collection
(** Stable sort by the key expression. *)

val top_k : ?descending:bool -> key:Pred.t -> int -> Algebra.collection -> Algebra.collection

(** {1 Numeric aggregates over a key expression} *)

val sum : key:Pred.t -> Algebra.collection -> Value.t
val avg : key:Pred.t -> Algebra.collection -> Value.t
val min_value : key:Pred.t -> Algebra.collection -> Value.t
val max_value : key:Pred.t -> Algebra.collection -> Value.t
val count : Algebra.collection -> int

(** {1 Structural aggregates} *)

val count_nodes : Algebra.collection -> int
val count_edges : Algebra.collection -> int

val degree_histogram : Algebra.collection -> (int * int) list
(** (degree, frequency), ascending degree, over all entries' graphs. *)
