open Gql_graph

type path = string list

type tuple_lit = {
  tag : string option;
  fields : (string * Pred.t) list;
}

type node_decl = {
  n_name : string option;
  n_tuple : tuple_lit option;
  n_where : Pred.t option;
  n_copy : path option;
}

type edge_decl = {
  e_name : string option;
  e_src : path;
  e_dst : path;
  e_tuple : tuple_lit option;
  e_where : Pred.t option;
}

type member =
  | Nodes of node_decl list
  | Edges of edge_decl list
  | Graph_refs of (string * string option) list
  | Unify of path list * Pred.t option
  | Exports of (path * string) list
  | Alt of member list list

type graph_decl = {
  g_name : string option;
  g_tuple : tuple_lit option;
  g_members : member list;
  g_where : Pred.t option;
}

type flwr = {
  f_pattern : [ `Named of string | `Inline of graph_decl ];
  f_exhaustive : bool;
  f_source : string;
  f_where : Pred.t option;
  f_body : body;
}

and body =
  | Return of template
  | Let of string * template

and template =
  | Tgraph of graph_decl
  | Tvar of string

type statement =
  | Sgraph of graph_decl
  | Sassign of string * template
  | Sflwr of flwr

type program = statement list

(* --- pretty printing ---------------------------------------------------- *)

let pp_path ppf p = Format.pp_print_string ppf (String.concat "." p)

let pp_tuple_lit ppf t =
  Format.pp_print_char ppf '<';
  (match t.tag with
  | Some tag ->
    Format.pp_print_string ppf tag;
    if t.fields <> [] then Format.pp_print_char ppf ' '
  | None -> ());
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
    (fun ppf (k, e) -> Format.fprintf ppf "%s=%a" k Pred.pp e)
    ppf t.fields;
  Format.pp_print_char ppf '>'

let pp_opt_tuple ppf = function
  | None -> ()
  | Some t -> Format.fprintf ppf " %a" pp_tuple_lit t

let pp_opt_where ppf = function
  | None -> ()
  | Some p -> Format.fprintf ppf " where %a" Pred.pp p

let pp_node ppf (n : node_decl) =
  match n.n_copy with
  | Some p -> pp_path ppf p
  | None ->
    Format.fprintf ppf "%s%a%a"
      (Option.value n.n_name ~default:"")
      pp_opt_tuple n.n_tuple pp_opt_where n.n_where

let pp_edge ppf (e : edge_decl) =
  Format.fprintf ppf "%s (%a, %a)%a%a"
    (Option.value e.e_name ~default:"")
    pp_path e.e_src pp_path e.e_dst pp_opt_tuple e.e_tuple pp_opt_where
    e.e_where

let comma ppf () = Format.fprintf ppf ",@ "

let rec pp_member ppf = function
  | Nodes ns ->
    Format.fprintf ppf "@[<h>node %a;@]"
      (Format.pp_print_list ~pp_sep:comma pp_node)
      ns
  | Edges es ->
    Format.fprintf ppf "@[<h>edge %a;@]"
      (Format.pp_print_list ~pp_sep:comma pp_edge)
      es
  | Graph_refs rs ->
    let pp_ref ppf (name, alias) =
      match alias with
      | None -> Format.pp_print_string ppf name
      | Some a -> Format.fprintf ppf "%s as %s" name a
    in
    Format.fprintf ppf "@[<h>graph %a;@]"
      (Format.pp_print_list ~pp_sep:comma pp_ref)
      rs
  | Unify (paths, where) ->
    Format.fprintf ppf "@[<h>unify %a%a;@]"
      (Format.pp_print_list ~pp_sep:comma pp_path)
      paths pp_opt_where where
  | Exports exps ->
    Format.fprintf ppf "@[<h>export %a;@]"
      (Format.pp_print_list ~pp_sep:comma (fun ppf (p, name) ->
           Format.fprintf ppf "%a as %s" pp_path p name))
      exps
  | Alt blocks ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " |@ ")
      (fun ppf ms ->
        Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
          (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_member)
          ms)
      ppf blocks;
    Format.pp_print_char ppf ';'

and pp_graph_decl ppf g =
  Format.fprintf ppf "@[<v 2>graph%s%a {@,%a@]@,}%a"
    (match g.g_name with Some n -> " " ^ n | None -> "")
    pp_opt_tuple g.g_tuple
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_member)
    g.g_members pp_opt_where g.g_where

let pp_template ppf = function
  | Tgraph g -> pp_graph_decl ppf g
  | Tvar v -> Format.pp_print_string ppf v

let pp_statement ppf = function
  | Sgraph g -> Format.fprintf ppf "%a;" pp_graph_decl g
  | Sassign (v, t) -> Format.fprintf ppf "@[<v>%s := %a;@]" v pp_template t
  | Sflwr f ->
    let pp_pattern ppf = function
      | `Named n -> Format.pp_print_string ppf n
      | `Inline g -> pp_graph_decl ppf g
    in
    Format.fprintf ppf "@[<v>for %a%s in doc(%S)%a@,%a;@]" pp_pattern
      f.f_pattern
      (if f.f_exhaustive then " exhaustive" else "")
      f.f_source pp_opt_where f.f_where
      (fun ppf -> function
        | Return t -> Format.fprintf ppf "return %a" pp_template t
        | Let (v, t) -> Format.fprintf ppf "let %s := %a" v pp_template t)
      f.f_body

let pp_program ppf p =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_statement ppf p
