(** Recursive-descent parser for GraphQL (Appendix 4.A, with the
    chapter's extensions: [as] aliases, disjunction blocks, [export],
    conditional [unify]).

    Tuple field values are parsed as additive expressions (no
    comparisons), which keeps [>] unambiguous as the tuple closer;
    full expressions appear in [where] clauses. *)

exception Error of string * int
(** message and byte offset into the source. *)

val program : string -> Ast.program
(** Parse a whole query text (a sequence of statements). *)

val graph : string -> Ast.graph_decl
(** Parse a single [graph ... { ... } [where ...]] declaration —
    used for graph literals and standalone patterns. *)

val expression : string -> Gql_graph.Pred.t

val position : string -> int -> int * int
(** [position src offset] = (line, column), 1-based, for error
    reporting. *)
