(** Graph templates and their instantiation (Definition 4.4).

    A template has formal parameters (graph patterns or graph
    variables) and a body declared in the graph syntax; given actual
    parameters — matched graphs for patterns, plain graphs for
    variables — instantiation produces a real graph.

    Template bodies may:
    - declare fresh nodes/edges whose attribute values are expressions
      over the parameters ([node v1 <label=P.v1.name>;], Fig 4.11);
    - {e copy} matched elements ([node P.v1, P.v2;], Fig 4.12) — the
      same source element copied twice yields one node;
    - {e include} whole graphs ([graph C;]);
    - unify nodes, optionally guarded: [unify P.v1, C.v1 where
      P.v1.name = C.v1.name;] merges the copy of [P.v1] with every node
      of the included graph [C] satisfying the predicate ([v1] acts as
      a variable ranging over [C]'s nodes).

    As everywhere in the motif language, edges whose endpoints are
    unified and whose tuples are equal merge automatically. *)

open Gql_graph

exception Error of string

type param =
  | Pgraph of Graph.t
  | Pmatched of Matched.t

type env = (string * param) list

val instantiate : ?env:env -> Ast.graph_decl -> Graph.t
(** Raises {!Error} on unknown references, pattern-only constructs
    (disjunction, export), or attribute expressions that do not
    evaluate. *)

val param_env : env -> Pred.env
(** The expression environment the parameters induce: [P.v1.name]
    resolves through matched bindings, [C.attr] through graph tuples. *)
