open Gql_graph

let entry_env = function
  | Algebra.G g -> Pred.env_of_tuple (Graph.tuple g)
  | Algebra.M m -> Matched.env m

let eval_key entry key =
  match Pred.eval (entry_env entry) key with
  | v -> v
  | exception (Pred.Unresolved _ | Value.Type_error _) -> Value.Null

let group_by ~key c =
  let order = ref [] in
  let groups : (Value.t, Algebra.entry list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun entry ->
      let k = eval_key entry key in
      (match Hashtbl.find_opt groups k with
      | None ->
        order := k :: !order;
        Hashtbl.add groups k [ entry ]
      | Some es -> Hashtbl.replace groups k (entry :: es)))
    c;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find groups k))) !order

let count_by ~key c = List.map (fun (k, es) -> (k, List.length es)) (group_by ~key c)

let order_by ?(descending = false) ~key c =
  let cmp a b =
    let c = Value.compare (eval_key a key) (eval_key b key) in
    if descending then -c else c
  in
  List.stable_sort cmp c

let top_k ?descending ~key k c =
  List.filteri (fun i _ -> i < k) (order_by ?descending ~key c)

let fold_numeric ~key c ~init ~f =
  List.fold_left
    (fun acc entry ->
      match eval_key entry key with
      | Value.Null -> acc
      | v -> f acc v)
    init c

let sum ~key c =
  fold_numeric ~key c ~init:(Value.Int 0) ~f:(fun acc v ->
      try Value.add acc v with Value.Type_error _ -> acc)

let count c = List.length c

let avg ~key c =
  let total, n =
    fold_numeric ~key c ~init:(0.0, 0) ~f:(fun (t, n) v ->
        match v with
        | Value.Int i -> (t +. float_of_int i, n + 1)
        | Value.Float f -> (t +. f, n + 1)
        | _ -> (t, n))
  in
  if n = 0 then Value.Null else Value.Float (total /. float_of_int n)

let extreme ~key better c =
  fold_numeric ~key c ~init:Value.Null ~f:(fun acc v ->
      match acc with
      | Value.Null -> v
      | _ -> if better (Value.compare v acc) then v else acc)

let min_value ~key c = extreme ~key (fun cmp -> cmp < 0) c
let max_value ~key c = extreme ~key (fun cmp -> cmp > 0) c

let count_nodes c =
  List.fold_left (fun n e -> n + Graph.n_nodes (Algebra.underlying e)) 0 c

let count_edges c =
  List.fold_left (fun n e -> n + Graph.n_edges (Algebra.underlying e)) 0 c

let degree_histogram c =
  let h = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let g = Algebra.underlying e in
      Graph.iter_nodes g ~f:(fun v ->
          let d = Graph.degree g v in
          Hashtbl.replace h d (1 + Option.value (Hashtbl.find_opt h d) ~default:0)))
    c;
  Hashtbl.fold (fun d n acc -> (d, n) :: acc) h [] |> List.sort compare
