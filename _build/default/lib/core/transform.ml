open Gql_graph

let node_holds g pred v = Pred.holds (Pred.env_of_tuple (Graph.node_tuple g v)) pred
let edge_holds pred e = Pred.holds (Pred.env_of_tuple e.Graph.etuple) pred

let rebuild ?(keep_node = fun _ -> true) ?(keep_edge = fun _ _ -> true)
    ?(map_node = fun _ t -> t) g =
  let b =
    Graph.Builder.create ~directed:(Graph.directed g) ?name:(Graph.name g)
      ~tuple:(Graph.tuple g) ()
  in
  let renum = Array.make (Graph.n_nodes g) (-1) in
  Graph.iter_nodes g ~f:(fun v ->
      if keep_node v then
        renum.(v) <-
          Graph.Builder.add_node b ?name:(Graph.node_name g v)
            (map_node v (Graph.node_tuple g v)));
  Graph.iter_edges g ~f:(fun i e ->
      let s = renum.(e.Graph.src) and d = renum.(e.Graph.dst) in
      if s >= 0 && d >= 0 && keep_edge i e then
        ignore
          (Graph.Builder.add_edge b ?name:(Graph.edge_name g i) ~tuple:e.Graph.etuple
             s d));
  Graph.Builder.build b

let filter_nodes ~pred g = rebuild ~keep_node:(node_holds g pred) g
let delete_nodes ~pred g = rebuild ~keep_node:(fun v -> not (node_holds g pred v)) g
let filter_edges ~pred g = rebuild ~keep_edge:(fun _ e -> edge_holds pred e) g
let delete_edges ~pred g = rebuild ~keep_edge:(fun _ e -> not (edge_holds pred e)) g

let update_nodes ?(pred = Pred.True) ~f g =
  rebuild ~map_node:(fun v t -> if node_holds g pred v then f t else t) g

let set_node_attr ?pred name value g =
  update_nodes ?pred ~f:(fun t -> Tuple.set t name value) g

(* a name-preserving copy of [g] into a fresh builder *)
let copy_into g =
  let b =
    Graph.Builder.create ~directed:(Graph.directed g) ?name:(Graph.name g)
      ~tuple:(Graph.tuple g) ()
  in
  Graph.iter_nodes g ~f:(fun v ->
      ignore (Graph.Builder.add_node b ?name:(Graph.node_name g v) (Graph.node_tuple g v)));
  Graph.iter_edges g ~f:(fun i e ->
      ignore
        (Graph.Builder.add_edge b ?name:(Graph.edge_name g i) ~tuple:e.Graph.etuple
           e.Graph.src e.Graph.dst));
  b

let add_node ?name tuple g =
  let b = copy_into g in
  let id = Graph.Builder.add_node b ?name tuple in
  (Graph.Builder.build b, id)

let add_edge ?name ?tuple src dst g =
  let b = copy_into g in
  ignore (Graph.Builder.add_edge b ?name ?tuple src dst);
  Graph.Builder.build b

let map_collection ~f c =
  List.map (fun entry -> Algebra.G (f (Algebra.underlying entry))) c
