exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let wrap src f =
  try f () with
  | Lexer.Error (msg, off) ->
    let line, col = Parser.position src off in
    err "lexical error at %d:%d: %s" line col msg
  | Parser.Error (msg, off) ->
    let line, col = Parser.position src off in
    err "parse error at %d:%d: %s" line col msg
  | Motif.Error msg -> err "pattern error: %s" msg
  | Template.Error msg -> err "template error: %s" msg
  | Eval.Error msg -> err "evaluation error: %s" msg

let parse_program src = wrap src (fun () -> Parser.program src)
let parse_graph_decl src = wrap src (fun () -> Parser.graph src)

let graph_of_string ?(defs = []) src =
  wrap src (fun () -> Motif.to_graph ~defs:(Motif.defs_of_list defs) (Parser.graph src))

let patterns_of_string ?(defs = []) ?max_depth src =
  wrap src (fun () ->
      Motif.flat_patterns ~defs:(Motif.defs_of_list defs) ?max_depth
        (Parser.graph src)
      |> List.of_seq)

let pattern_of_string ?defs ?max_depth src =
  match patterns_of_string ?defs ?max_depth src with
  | p :: _ -> p
  | [] -> err "pattern has no derivation"

let find_matches ?strategy ?exhaustive ?limit ~pattern g =
  let patterns = patterns_of_string pattern in
  Algebra.select ?strategy ?exhaustive ?limit ~patterns [ Algebra.G g ]
  |> List.filter_map (function Algebra.M m -> Some m | Algebra.G _ -> None)

let count_matches ?strategy ~pattern g =
  List.length (find_matches ?strategy ~pattern g)

let run_query ?docs ?strategy src =
  wrap src (fun () -> Eval.run ?docs ?strategy (Parser.program src))
