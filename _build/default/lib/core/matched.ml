open Gql_graph
module Flat_pattern = Gql_matcher.Flat_pattern

type t = {
  pattern : Flat_pattern.t;
  graph : Graph.t;
  phi : int array;
}

let make pattern graph phi = { pattern; graph; phi }

let node_id_by_var m name =
  let k = Flat_pattern.size m.pattern in
  let rec go u =
    if u >= k then None
    else if Flat_pattern.var_name m.pattern u = name then Some u
    else go (u + 1)
  in
  go 0

let node m name = Option.map (fun u -> m.phi.(u)) (node_id_by_var m name)
let node_tuple m name = Option.map (Graph.node_tuple m.graph) (node m name)

let edge m name =
  let pg = m.pattern.Flat_pattern.structure in
  match Graph.edge_by_name pg name with
  | None -> None
  | Some pe ->
    let e = Graph.edge pg pe in
    Graph.find_edge m.graph m.phi.(e.Graph.src) m.phi.(e.Graph.dst)

let env m =
  let pg = m.pattern.Flat_pattern.structure in
  let node_bindings =
    List.init (Flat_pattern.size m.pattern) (fun u ->
        ( Flat_pattern.var_name m.pattern u,
          Pred.env_of_tuple (Graph.node_tuple m.graph m.phi.(u)) ))
  in
  let edge_bindings =
    List.init (Graph.n_edges pg) (fun pe ->
        let name =
          match Graph.edge_name pg pe with
          | Some n -> n
          | None -> Printf.sprintf "e%d" pe
        in
        let e = Graph.edge pg pe in
        let env =
          match Graph.find_edge m.graph m.phi.(e.Graph.src) m.phi.(e.Graph.dst) with
          | Some ge -> Pred.env_of_tuple (Graph.edge m.graph ge).Graph.etuple
          | None -> fun _ -> None
        in
        (name, env))
  in
  let bindings = node_bindings @ edge_bindings in
  let fallback = Pred.env_of_tuple (Graph.tuple m.graph) in
  (* pattern variables from nested motifs carry dotted names ("R.het"),
     so resolve the longest dotted prefix of the path as a variable *)
  fun path ->
    let n = List.length path in
    let rec try_len l =
      if l = 0 then fallback path
      else begin
        let prefix = List.filteri (fun i _ -> i < l) path in
        let rest = List.filteri (fun i _ -> i >= l) path in
        match List.assoc_opt (String.concat "." prefix) bindings with
        | Some env ->
          (match rest with
          | [] -> Some Value.Null  (* bare element reference *)
          | _ -> env rest)
        | None -> try_len (l - 1)
      end
    in
    try_len n

let to_graph m =
  let pg = m.pattern.Flat_pattern.structure in
  let b =
    Graph.Builder.create ~directed:(Graph.directed m.graph)
      ?name:(Graph.name pg) ~tuple:(Graph.tuple m.graph) ()
  in
  let ids =
    Array.init (Flat_pattern.size m.pattern) (fun u ->
        Graph.Builder.add_node b
          ~name:(Flat_pattern.var_name m.pattern u)
          (Graph.node_tuple m.graph m.phi.(u)))
  in
  Graph.iter_edges pg ~f:(fun pe e ->
      let tuple =
        match Graph.find_edge m.graph m.phi.(e.Graph.src) m.phi.(e.Graph.dst) with
        | Some ge -> (Graph.edge m.graph ge).Graph.etuple
        | None -> Tuple.empty
      in
      ignore
        (Graph.Builder.add_edge b
           ?name:(Graph.edge_name pg pe)
           ~tuple ids.(e.Graph.src) ids.(e.Graph.dst)));
  Graph.Builder.build b

let same_binding a b = a.phi = b.phi && a.graph == b.graph
