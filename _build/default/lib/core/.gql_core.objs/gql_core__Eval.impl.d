lib/core/eval.ml: Algebra Ast Format Gql_graph Graph List Matched Motif Option Pred Template
