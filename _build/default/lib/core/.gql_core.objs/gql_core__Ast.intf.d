lib/core/ast.mli: Format Gql_graph Pred
