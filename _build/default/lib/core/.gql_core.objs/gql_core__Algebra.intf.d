lib/core/algebra.mli: Ast Gql_graph Gql_matcher Graph Matched Pred Tuple
