lib/core/aggregate.mli: Algebra Gql_graph Pred Value
