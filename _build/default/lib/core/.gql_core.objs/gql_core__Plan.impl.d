lib/core/plan.ml: Algebra Array Ast Eval Format Gql_graph Gql_matcher Graph Hashtbl List Matched Motif Option Pred Printf String Template
