lib/core/plan.mli: Ast Eval Format Gql_graph Gql_matcher Pred
