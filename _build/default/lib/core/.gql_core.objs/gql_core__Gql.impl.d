lib/core/gql.ml: Algebra Eval Format Lexer List Motif Parser Template
