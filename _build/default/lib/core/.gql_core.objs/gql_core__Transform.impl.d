lib/core/transform.ml: Algebra Array Gql_graph Graph List Pred Tuple
