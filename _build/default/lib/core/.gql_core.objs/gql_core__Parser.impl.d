lib/core/parser.ml: Array Ast Gql_graph Lexer List Pred Printf String Value
