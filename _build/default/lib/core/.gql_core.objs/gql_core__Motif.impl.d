lib/core/motif.ml: Array Ast Format Fun Gql_graph Gql_matcher Graph Hashtbl List Option Pred Printf Seq String Tuple Value
