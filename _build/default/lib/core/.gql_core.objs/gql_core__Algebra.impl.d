lib/core/algebra.ml: Gql_graph Gql_matcher Graph Iso List Matched Option Pred Template Tuple
