lib/core/lexer.ml: Array Buffer List Printf String
