lib/core/eval.mli: Algebra Ast Gql_graph Gql_matcher Graph
