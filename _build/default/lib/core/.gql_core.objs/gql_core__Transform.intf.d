lib/core/transform.mli: Algebra Gql_graph Graph Pred Tuple Value
