lib/core/parser.mli: Ast Gql_graph
