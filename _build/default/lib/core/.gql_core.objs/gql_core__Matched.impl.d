lib/core/matched.ml: Array Gql_graph Gql_matcher Graph List Option Pred Printf String Tuple Value
