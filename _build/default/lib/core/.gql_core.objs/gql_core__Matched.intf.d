lib/core/matched.mli: Gql_graph Gql_matcher Graph Pred Tuple
