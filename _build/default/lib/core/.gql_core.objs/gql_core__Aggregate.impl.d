lib/core/aggregate.ml: Algebra Gql_graph Graph Hashtbl List Matched Option Pred Value
