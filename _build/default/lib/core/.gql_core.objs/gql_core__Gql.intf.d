lib/core/gql.mli: Ast Eval Gql_graph Gql_matcher Graph Matched
