lib/core/lexer.mli:
