lib/core/motif.mli: Ast Gql_graph Gql_matcher Graph Pred Seq
