lib/core/template.ml: Array Ast Format Fun Gql_graph Graph Hashtbl List Matched Option Pred String Tuple Value
