lib/core/ast.ml: Format Gql_graph Option Pred String
