lib/core/template.mli: Ast Gql_graph Graph Matched Pred
