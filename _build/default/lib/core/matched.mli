(** Matched graphs (Definition 4.3).

    Given an injective mapping φ between a pattern P and a graph G, a
    matched graph is the triple ⟨φ, P, G⟩. It has all characteristics
    of a graph (we expose the underlying G) {e plus} the binding, which
    lets templates and predicates access the matched elements by their
    pattern variable names. *)

open Gql_graph

type t = {
  pattern : Gql_matcher.Flat_pattern.t;
  graph : Graph.t;
  phi : int array;  (** pattern node id -> data node id *)
}

val make : Gql_matcher.Flat_pattern.t -> Graph.t -> int array -> t

val node : t -> string -> int option
(** Data node bound to the pattern variable of that name. *)

val node_tuple : t -> string -> Tuple.t option

val edge : t -> string -> int option
(** Data edge matched by the named pattern edge (any one, if the data
    graph has parallel candidates). *)

val env : t -> Pred.env
(** Resolves [v1.attr] paths through the binding: pattern node and edge
    variables map to the matched elements' tuples; unknown single-
    component paths fall back to the data graph's own tuple. *)

val to_graph : t -> Graph.t
(** The matched subgraph, materialized: one node per pattern variable
    (carrying the {e data} node's tuple, named by the pattern variable)
    and one edge per pattern edge. *)

val same_binding : t -> t -> bool
