(** Graph update operations.

    §6.1 compares GraphQL with TAX, whose extra operators are
    "copy-and-paste, value updates, node deletion and insertion —
    GraphQL can express these operations by the composition operator."
    These are the direct forms, as a library convenience: each produces
    a new graph (graphs stay immutable). Node deletion removes incident
    edges, as in GOOD's node-deletion semantics. *)

open Gql_graph

val filter_nodes : pred:Pred.t -> Graph.t -> Graph.t
(** Keep the nodes whose tuple satisfies [pred] (and the edges between
    them). *)

val delete_nodes : pred:Pred.t -> Graph.t -> Graph.t
(** Drop the nodes satisfying [pred]. *)

val filter_edges : pred:Pred.t -> Graph.t -> Graph.t
val delete_edges : pred:Pred.t -> Graph.t -> Graph.t

val update_nodes : ?pred:Pred.t -> f:(Tuple.t -> Tuple.t) -> Graph.t -> Graph.t
(** Value update on every node tuple satisfying [pred] (default all). *)

val set_node_attr : ?pred:Pred.t -> string -> Value.t -> Graph.t -> Graph.t

val add_node : ?name:string -> Tuple.t -> Graph.t -> Graph.t * int
(** Node insertion; returns the new node's id in the new graph (old ids
    are preserved). *)

val add_edge : ?name:string -> ?tuple:Tuple.t -> int -> int -> Graph.t -> Graph.t

val map_collection : f:(Graph.t -> Graph.t) -> Algebra.collection -> Algebra.collection
(** Bulk form over a collection (matched entries lose their binding —
    the rewritten graph is a new graph). *)
