(** GraphQL — the public facade.

    One-stop entry points over the parser ({!Parser}), the motif
    derivation ({!Motif}), the algebra ({!Algebra}) and the FLWR
    evaluator ({!Eval}); see those modules for the full APIs, and
    [Gql_matcher.Engine] for the tunable access methods. *)

open Gql_graph

exception Error of string
(** All parse/derivation/evaluation errors, with positions rendered
    into the message. *)

val parse_program : string -> Ast.program
val parse_graph_decl : string -> Ast.graph_decl

val graph_of_string : ?defs:(string * Ast.graph_decl) list -> string -> Graph.t
(** Parse a ground [graph { ... }] literal into a data graph. *)

val pattern_of_string :
  ?defs:(string * Ast.graph_decl) list ->
  ?max_depth:int ->
  string ->
  Gql_matcher.Flat_pattern.t
(** The first derivation of the pattern (the only one for
    non-recursive patterns without disjunction). *)

val patterns_of_string :
  ?defs:(string * Ast.graph_decl) list ->
  ?max_depth:int ->
  string ->
  Gql_matcher.Flat_pattern.t list
(** All derivations (recursion bounded by [max_depth]). *)

val find_matches :
  ?strategy:Gql_matcher.Engine.strategy ->
  ?exhaustive:bool ->
  ?limit:int ->
  pattern:string ->
  Graph.t ->
  Matched.t list
(** Parse the pattern and run the selection operator against one
    graph. *)

val count_matches :
  ?strategy:Gql_matcher.Engine.strategy -> pattern:string -> Graph.t -> int

val run_query : ?docs:Eval.docs -> ?strategy:Gql_matcher.Engine.strategy -> string -> Eval.result
(** Parse and evaluate a whole program. *)
