(** Predicate expressions on attributes.

    A graph pattern P = (M, F) pairs a motif M with a predicate F over the
    attributes of the motif (Definition 4.1). Predicates are boolean or
    arithmetic comparison expressions over attribute {e paths} such as
    [v1.name] or [P.booktitle].

    Evaluation is deliberately lenient: comparing against a missing
    attribute, or applying an operator to operands of the wrong kind,
    makes the predicate {e not hold} instead of raising — graphs bound to
    a pattern are heterogeneous and may lack any given attribute. *)

type binop =
  | Eq | Ne | Lt | Le | Gt | Ge       (** comparisons, producing booleans *)
  | And | Or                          (** logical connectives *)
  | Add | Sub | Mul | Div             (** arithmetic *)

type t =
  | True                              (** the empty predicate *)
  | Lit of Value.t
  | Attr of string list               (** attribute path, e.g. [["v1";"name"]] *)
  | Not of t
  | Binop of binop * t * t

(** {1 Construction helpers} *)

val attr : string -> t
(** [attr "name"] is the path [Attr ["name"]] (an attribute of the element
    in whose scope the predicate is evaluated). *)

val path : string list -> t
val str : string -> t
val int : int -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
(** Conjunction; absorbs [True] operands. *)

val ( || ) : t -> t -> t

val conj : t list -> t
(** Conjunction of a list; [conj [] = True]. *)

(** {1 Environments} *)

type env = string list -> Value.t option
(** An environment resolves an attribute path to a value. *)

val env_of_tuple : Tuple.t -> env
(** Single-component paths resolve as attributes of the tuple; longer
    paths are unresolved. *)

val env_scope : (string * env) list -> env
(** [env_scope bindings] resolves a path [x :: rest] by looking up [x]
    among [bindings] and resolving [rest] there. A single-component path
    [[x]] resolves to [Null] if [x] is a bound name (a bare element
    reference, which has no scalar value). *)

val env_extend : env -> (string * env) list -> env
(** Inner bindings shadow the outer environment. *)

(** {1 Evaluation} *)

exception Unresolved of string list
(** Raised by {!eval} when a path has no binding in the environment. *)

val eval : env -> t -> Value.t
(** Full evaluation. May raise [Unresolved] or [Value.Type_error]. *)

val holds : env -> t -> bool
(** [holds env p] is true iff [p] evaluates to [Bool true]; unresolved
    paths and type errors yield [false]. *)

(** {1 Analysis (for predicate pushdown, Section 4.1)} *)

val conjuncts : t -> t list
(** Flattens top-level conjunctions; [conjuncts True = []]. *)

val roots : t -> string list
(** Sorted distinct heads of the attribute paths in the predicate. The
    empty-string root stands for single-component (self) paths. *)

val split_by_root : vars:string list -> t -> (string * t) list * t
(** [split_by_root ~vars p] pushes conjuncts down to the single pattern
    variable they mention: returns per-variable predicates (with the
    variable prefix stripped, so they evaluate in the element's own
    scope) and the residual graph-wide predicate. A conjunct mentioning
    zero or several variables, or any root outside [vars], stays in the
    residue. *)

val strip_prefix : string -> t -> t
(** [strip_prefix v p] rewrites paths [v :: rest] to [rest]. *)

val add_prefix : string -> t -> t
(** [add_prefix v p] rewrites every path [q] to [v :: q]. Inverse of
    {!strip_prefix} on predicates rooted at [v]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints in GraphQL [where]-clause syntax. *)
