(** Attribute tuples.

    A tuple is a list of name/value pairs with an optional {e tag} denoting
    the tuple type (Section 3.1). Tuples annotate nodes, edges and whole
    graphs; they are the GraphQL analogue of relational tuples, except that
    two tuples in the same collection need not share a schema. *)

type t

val empty : t

val make : ?tag:string -> (string * Value.t) list -> t
(** [make ~tag attrs] builds a tuple. Later bindings of the same name
    shadow earlier ones. *)

val tag : t -> string option

val find : t -> string -> Value.t option
(** [find t name] is the value bound to attribute [name], if any. *)

val get : t -> string -> Value.t
(** Like {!find} but returns [Value.Null] when the attribute is absent —
    the semantics used by predicate evaluation, where a comparison against
    a missing attribute is simply false rather than an error. *)

val mem : t -> string -> bool

val set : t -> string -> Value.t -> t
(** Functional update; adds the binding or replaces an existing one. *)

val remove : t -> string -> t

val with_tag : t -> string option -> t

val bindings : t -> (string * Value.t) list
(** Bindings in insertion order (with shadowed entries removed). *)

val names : t -> string list

val cardinal : t -> int

val union : t -> t -> t
(** [union a b] contains all bindings of [a] and [b]; on a name clash [b]
    wins. The tag of [a] is kept unless [a] has none. *)

val project : t -> string list -> t
(** Keep only the named attributes (missing names are ignored). *)

val rename : t -> (string * string) list -> t
(** Rename attributes according to the association list. *)

val label : t -> string
(** Convenience accessor for the canonical ["label"] attribute used
    throughout the experimental study; [""] when absent or non-string.
    A string-valued tag is used as a fallback label, mirroring the paper's
    [<author ...>] tuples where the tag acts as the node kind. *)

val equal : t -> t -> bool
(** Equality on tags and on the (name, value) {e sets} (order-insensitive). *)

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints in GraphQL syntax: [<tag name1=v1 name2=v2>]. *)
