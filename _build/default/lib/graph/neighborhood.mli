(** Neighborhood subgraphs (Definition 4.10).

    Given graph [g], node [v] and radius [r], the neighborhood subgraph
    of [v] consists of all nodes within distance [r] (number of hops)
    from [v] and all edges between them. Radius 0 degenerates to the
    node itself.

    The matcher uses neighborhood subgraphs for local pruning (§4.2):
    [v] is a feasible mate of pattern node [u] only if the neighborhood
    subgraph of [u] is sub-isomorphic to that of [v] with [u] mapped to
    [v]. *)

type t = {
  center : int;  (** id of the center node {e in the subgraph}. *)
  graph : Graph.t;
  original : int array;  (** subgraph node id -> id in the host graph. *)
}

val nodes_within : Graph.t -> int -> r:int -> int list
(** BFS ball: all nodes at distance <= [r] from the given node (treating
    edges as undirected even in directed graphs, following the paper's
    hop-count definition). Sorted ascending. *)

val make : Graph.t -> int -> r:int -> t
(** The neighborhood subgraph of one node. *)

val all : Graph.t -> r:int -> t array
(** Neighborhood subgraphs of every node; index = node id. *)

val pp : Format.formatter -> t -> unit
