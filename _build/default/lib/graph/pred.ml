type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div

type t =
  | True
  | Lit of Value.t
  | Attr of string list
  | Not of t
  | Binop of binop * t * t

let attr name = Attr [ name ]
let path p = Attr p
let str s = Lit (Value.Str s)
let int i = Lit (Value.Int i)

let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)

let ( && ) a b =
  match a, b with
  | True, p | p, True -> p
  | _ -> Binop (And, a, b)

let ( || ) a b = Binop (Or, a, b)

let conj ps = List.fold_left ( && ) True ps

type env = string list -> Value.t option

exception Unresolved of string list

let env_of_tuple tuple = function
  | [ name ] -> Some (Tuple.get tuple name)
  | _ -> None

let env_scope bindings = function
  | [] -> None
  | [ x ] -> if List.mem_assoc x bindings then Some Value.Null else None
  | x :: rest ->
    match List.assoc_opt x bindings with
    | Some env -> env rest
    | None -> None

let env_extend outer bindings path =
  match env_scope bindings path with
  | Some _ as v -> v
  | None -> outer path

let value_compare_op op a b =
  (* comparisons against Null never hold, except equality of two Nulls *)
  match a, b, op with
  | Value.Null, Value.Null, Eq -> Value.Bool true
  | Value.Null, Value.Null, Ne -> Value.Bool false
  | (Value.Null, _, _ | _, Value.Null, _) -> Value.Bool (Stdlib.( = ) op Ne)
  | _ ->
    let c = Value.compare a b in
    let r =
      match op with
      | Eq -> Stdlib.( = ) c 0
      | Ne -> Stdlib.( <> ) c 0
      | Lt -> Stdlib.( < ) c 0
      | Le -> Stdlib.( <= ) c 0
      | Gt -> Stdlib.( > ) c 0
      | Ge -> Stdlib.( >= ) c 0
      | And | Or | Add | Sub | Mul | Div -> assert false
    in
    Value.Bool r

let rec eval env p =
  match p with
  | True -> Value.Bool true
  | Lit v -> v
  | Attr path ->
    (match env path with Some v -> v | None -> raise (Unresolved path))
  | Not p -> Value.logical_not (eval env p)
  | Binop (And, a, b) ->
    (* short-circuit *)
    if Value.to_bool (eval env a) then eval env b else Value.Bool false
  | Binop (Or, a, b) ->
    if Value.to_bool (eval env a) then Value.Bool true else eval env b
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    value_compare_op op (eval env a) (eval env b)
  | Binop (Add, a, b) -> Value.add (eval env a) (eval env b)
  | Binop (Sub, a, b) -> Value.sub (eval env a) (eval env b)
  | Binop (Mul, a, b) -> Value.mul (eval env a) (eval env b)
  | Binop (Div, a, b) -> Value.div (eval env a) (eval env b)

let holds env p =
  match eval env p with
  | Value.Bool b -> b
  | _ -> false
  | exception (Unresolved _ | Value.Type_error _) -> false

let rec conjuncts = function
  | True -> []
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let rec collect_roots acc = function
  | True | Lit _ -> acc
  | Attr [] -> acc
  | Attr [ _ ] -> "" :: acc
  | Attr (x :: _) -> x :: acc
  | Not p -> collect_roots acc p
  | Binop (_, a, b) -> collect_roots (collect_roots acc a) b

let roots p = List.sort_uniq String.compare (collect_roots [] p)

let rec map_paths f = function
  | (True | Lit _) as p -> p
  | Attr path -> Attr (f path)
  | Not p -> Not (map_paths f p)
  | Binop (op, a, b) -> Binop (op, map_paths f a, map_paths f b)

let strip_prefix v =
  map_paths (function x :: rest when String.equal x v -> rest | path -> path)

let add_prefix v = map_paths (fun path -> v :: path)

let split_by_root ~vars p =
  let locals = Hashtbl.create 8 in
  let residual = ref [] in
  let push_local v q =
    let prev = Option.value (Hashtbl.find_opt locals v) ~default:True in
    Hashtbl.replace locals v (( && ) prev (strip_prefix v q))
  in
  List.iter
    (fun q ->
      match roots q with
      | [ v ] when List.mem v vars -> push_local v q
      | _ -> residual := q :: !residual)
    (conjuncts p);
  let per_var =
    List.filter_map
      (fun v -> Option.map (fun q -> (v, q)) (Hashtbl.find_opt locals v))
      vars
  in
  (per_var, conj (List.rev !residual))

let rec equal a b =
  match a, b with
  | True, True -> true
  | Lit x, Lit y -> Value.equal x y
  | Attr p, Attr q -> Stdlib.( = ) p q
  | Not x, Not y -> equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
    Stdlib.( && ) (Stdlib.( = ) o1 o2) (Stdlib.( && ) (equal a1 a2) (equal b1 b2))
  | _ -> false

let binop_name = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&" | Or -> "|" | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Lit v -> Value.pp ppf v
  | Attr path -> Format.pp_print_string ppf (String.concat "." path)
  | Not p -> Format.fprintf ppf "!(%a)" pp p
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
