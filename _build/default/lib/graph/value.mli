(** Attribute values.

    GraphQL annotates nodes, edges and graphs with tuples of named values
    (Section 3.1 of the paper). Values are dynamically typed scalars; the
    comparison operators used in predicates are defined here with the
    numeric coercions one expects from a query language (an [Int] compares
    with a [Float] numerically). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val compare : t -> t -> int
(** Total order used by indexes and predicate evaluation. Values of
    different kinds are ordered by kind ([Null] < [Bool] < numeric <
    [Str]), except that [Int] and [Float] compare numerically with each
    other. *)

val equal : t -> t -> bool

val hash : t -> int

(** {1 Arithmetic and logic}

    Arithmetic on non-numeric values and logic on non-boolean values
    raise [Type_error]. *)

exception Type_error of string

val add : t -> t -> t
(** Numeric addition; concatenation on strings. *)

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val logical_and : t -> t -> t
val logical_or : t -> t -> t
val logical_not : t -> t

val to_bool : t -> bool
(** Truthiness used by predicate evaluation: [Bool b] is [b]; any other
    value raises [Type_error]. *)

(** {1 Printing and parsing} *)

val pp : Format.formatter -> t -> unit
(** Prints in GraphQL literal syntax: integers and floats bare, strings
    double-quoted with escapes. *)

val to_string : t -> string

val of_literal : string -> t
(** Parses an unquoted literal as it appears in the graph text format:
    tries [Int], then [Float], then [Bool], else [Str]. *)
