type t = {
  center : int;
  graph : Graph.t;
  original : int array;
}

let nodes_within g v ~r =
  let dist = Hashtbl.create 32 in
  Hashtbl.add dist v 0;
  let q = Queue.create () in
  Queue.add v q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let d = Hashtbl.find dist u in
    if d < r then begin
      let visit (w, _) =
        if not (Hashtbl.mem dist w) then begin
          Hashtbl.add dist w (d + 1);
          Queue.add w q
        end
      in
      Array.iter visit (Graph.neighbors g u);
      if Graph.directed g then Array.iter visit (Graph.in_neighbors g u)
    end
  done;
  Hashtbl.fold (fun w _ acc -> w :: acc) dist [] |> List.sort compare

let make g v ~r =
  let members = nodes_within g v ~r in
  let sub, original = Graph.induced_subgraph g members in
  let center =
    let rec find i = if original.(i) = v then i else find (i + 1) in
    find 0
  in
  { center; graph = sub; original }

let all g ~r = Array.init (Graph.n_nodes g) (fun v -> make g v ~r)

let pp ppf t =
  Format.fprintf ppf "@[<v>center=%d@,%a@]" t.center Graph.pp t.graph
