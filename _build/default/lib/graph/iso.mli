(** Reference (sub)graph-isomorphism algorithms.

    These are deliberately simple backtracking algorithms used as
    correctness oracles in the test suite and as the rooted
    sub-isomorphism check of the neighborhood-subgraph pruning (§4.2).
    The optimized access methods live in [Gql_matcher]. *)

val find_embeddings :
  ?compat:(int -> int -> bool) ->
  ?fixed:(int * int) list ->
  ?limit:int ->
  pattern:Graph.t ->
  target:Graph.t ->
  unit ->
  int array list
(** All injective mappings [phi] from pattern nodes to target nodes such
    that every pattern edge [(u, v)] maps to a target edge
    [(phi u, phi v)] (Definition 4.2, structure only). [compat u v]
    additionally constrains which target nodes a pattern node may take
    (default: label equality when the pattern node has a non-empty
    label, anything otherwise). [fixed] pre-binds pattern nodes.
    Directed patterns require matching edge orientation. At most
    [limit] embeddings are returned when given. *)

val count_embeddings :
  ?compat:(int -> int -> bool) -> pattern:Graph.t -> target:Graph.t -> unit -> int

val exists_embedding :
  ?compat:(int -> int -> bool) ->
  ?fixed:(int * int) list ->
  pattern:Graph.t ->
  target:Graph.t ->
  unit ->
  bool

val rooted_sub_iso :
  compat:(int -> int -> bool) ->
  pattern:Graph.t -> pattern_root:int ->
  target:Graph.t -> target_root:int ->
  bool
(** Sub-isomorphism with the roots pre-mapped to each other — the
    neighborhood-subgraph feasibility test of §4.2. *)

val isomorphic : Graph.t -> Graph.t -> bool
(** Exact isomorphism on attributed graphs: a bijection preserving edges
    (both ways) and node tuples; edge tuples must match too. *)
