lib/graph/value.ml: Format Hashtbl Stdlib
