lib/graph/graph.mli: Format Hashtbl Tuple
