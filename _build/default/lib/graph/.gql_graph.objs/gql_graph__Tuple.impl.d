lib/graph/tuple.ml: Format Hashtbl List Option String Value
