lib/graph/neighborhood.ml: Array Format Graph Hashtbl List Queue
