lib/graph/tuple.mli: Format Value
