lib/graph/profile.ml: Array Format Graph List Neighborhood String
