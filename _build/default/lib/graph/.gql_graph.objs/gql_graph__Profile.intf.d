lib/graph/profile.mli: Format Graph Neighborhood
