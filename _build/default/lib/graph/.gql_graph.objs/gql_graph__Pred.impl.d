lib/graph/pred.ml: Format Hashtbl List Option Stdlib String Tuple Value
