lib/graph/pred.mli: Format Tuple Value
