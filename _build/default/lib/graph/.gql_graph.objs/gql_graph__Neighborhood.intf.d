lib/graph/neighborhood.mli: Format Graph
