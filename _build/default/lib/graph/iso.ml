let default_compat pattern target u v =
  let lu = Graph.label pattern u in
  lu = "" || lu = Graph.label target v

(* Check that mapping phi, defined on pattern nodes < bound plus the
   candidate (u -> v), preserves the pattern edges incident to u among
   already-mapped nodes. *)
let edges_ok pattern target phi u v =
  Array.for_all
    (fun (u', _) ->
      let v' = phi.(u') in
      v' < 0 || Graph.has_edge target v v')
    (Graph.neighbors pattern u)
  &&
  (not (Graph.directed pattern)
  || Array.for_all
       (fun (u', _) ->
         let v' = phi.(u') in
         v' < 0 || Graph.has_edge target v' v)
       (Graph.in_neighbors pattern u))

let find_embeddings ?compat ?(fixed = []) ?limit ~pattern ~target () =
  let k = Graph.n_nodes pattern and n = Graph.n_nodes target in
  let compat = Option.value compat ~default:(default_compat pattern target) in
  let phi = Array.make k (-1) in
  let used = Array.make n false in
  let results = ref [] in
  let count = ref 0 in
  let ok = ref true in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= k || v < 0 || v >= n then ok := false
      else begin
        phi.(u) <- v;
        if used.(v) then ok := false;
        used.(v) <- true
      end)
    fixed;
  (* verify edges among fixed nodes *)
  if !ok then
    List.iter
      (fun (u, v) ->
        if not (compat u v) then ok := false;
        phi.(u) <- -1;
        (* temporarily unmap to reuse edges_ok, then restore *)
        if not (edges_ok pattern target phi u v) then ok := false;
        phi.(u) <- v)
      fixed;
  let order =
    (* fixed nodes first (already bound), then the rest by descending degree *)
    let fixed_set = List.map fst fixed in
    let rest =
      List.init k (fun i -> i)
      |> List.filter (fun i -> not (List.mem i fixed_set))
      |> List.sort (fun a b -> compare (Graph.degree pattern b) (Graph.degree pattern a))
    in
    Array.of_list rest
  in
  let exception Done in
  let rec go i =
    if i >= Array.length order then begin
      results := Array.copy phi :: !results;
      incr count;
      match limit with Some l when !count >= l -> raise Done | _ -> ()
    end
    else begin
      let u = order.(i) in
      for v = 0 to n - 1 do
        if (not used.(v)) && compat u v && edges_ok pattern target phi u v
        then begin
          phi.(u) <- v;
          used.(v) <- true;
          go (i + 1);
          phi.(u) <- -1;
          used.(v) <- false
        end
      done
    end
  in
  if !ok then (try go 0 with Done -> ());
  List.rev !results

let count_embeddings ?compat ~pattern ~target () =
  List.length (find_embeddings ?compat ~pattern ~target ())

let exists_embedding ?compat ?fixed ~pattern ~target () =
  find_embeddings ?compat ?fixed ~limit:1 ~pattern ~target () <> []

let rooted_sub_iso ~compat ~pattern ~pattern_root ~target ~target_root =
  exists_embedding ~compat
    ~fixed:[ (pattern_root, target_root) ]
    ~pattern ~target ()

let isomorphic g1 g2 =
  Graph.directed g1 = Graph.directed g2
  && Graph.n_nodes g1 = Graph.n_nodes g2
  && Graph.n_edges g1 = Graph.n_edges g2
  &&
  let compat u v = Tuple.equal (Graph.node_tuple g1 u) (Graph.node_tuple g2 v) in
  (* a bijective embedding of g1 into g2 with equal edge counts per pair
     and matching edge tuples *)
  let embeddings = find_embeddings ~compat ~pattern:g1 ~target:g2 () in
  List.exists
    (fun phi ->
      Graph.fold_edges g1 ~init:true ~f:(fun acc _ e ->
          acc
          &&
          let ids = Graph.find_all_edges g2 phi.(e.src) phi.(e.dst) in
          List.exists
            (fun i -> Tuple.equal (Graph.edge g2 i).Graph.etuple e.Graph.etuple)
            ids))
    embeddings
