type t = {
  tag : string option;
  attrs : (string * Value.t) list;  (* insertion order, names unique *)
}

let empty = { tag = None; attrs = [] }

let dedup attrs =
  (* keep the *last* binding for each name, preserving first-seen order *)
  let seen = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace seen k v) attrs;
  let emitted = Hashtbl.create 8 in
  List.filter_map
    (fun (k, _) ->
      if Hashtbl.mem emitted k then None
      else begin
        Hashtbl.add emitted k ();
        Some (k, Hashtbl.find seen k)
      end)
    attrs

let make ?tag attrs = { tag; attrs = dedup attrs }

let tag t = t.tag
let find t name = List.assoc_opt name t.attrs
let get t name = Option.value (find t name) ~default:Value.Null
let mem t name = List.mem_assoc name t.attrs

let set t name v =
  if mem t name then
    { t with attrs = List.map (fun (k, w) -> if k = name then (k, v) else (k, w)) t.attrs }
  else { t with attrs = t.attrs @ [ (name, v) ] }

let remove t name = { t with attrs = List.remove_assoc name t.attrs }
let with_tag t tag = { t with tag }
let bindings t = t.attrs
let names t = List.map fst t.attrs
let cardinal t = List.length t.attrs

let union a b =
  let tag = match a.tag with Some _ -> a.tag | None -> b.tag in
  { tag; attrs = dedup (a.attrs @ b.attrs) }

let project t keep = { t with attrs = List.filter (fun (k, _) -> List.mem k keep) t.attrs }

let rename t mapping =
  let rename_key k = Option.value (List.assoc_opt k mapping) ~default:k in
  { t with attrs = dedup (List.map (fun (k, v) -> (rename_key k, v)) t.attrs) }

let label t =
  match find t "label" with
  | Some (Value.Str s) -> s
  | Some v -> Value.to_string v
  | None -> Option.value t.tag ~default:""

let sorted_attrs t = List.sort (fun (a, _) (b, _) -> String.compare a b) t.attrs

let compare a b =
  match Option.compare String.compare a.tag b.tag with
  | 0 ->
    List.compare
      (fun (k1, v1) (k2, v2) ->
        match String.compare k1 k2 with 0 -> Value.compare v1 v2 | c -> c)
      (sorted_attrs a) (sorted_attrs b)
  | c -> c

let equal a b = compare a b = 0

let hash t =
  List.fold_left
    (fun acc (k, v) -> acc lxor (Hashtbl.hash k + (31 * Value.hash v)))
    (Hashtbl.hash t.tag) t.attrs

let pp ppf t =
  let pp_attr ppf (k, v) = Format.fprintf ppf "%s=%a" k Value.pp v in
  let pp_body ppf () =
    (match t.tag with
    | Some tag ->
      Format.pp_print_string ppf tag;
      if t.attrs <> [] then Format.pp_print_space ppf ()
    | None -> ());
    Format.pp_print_list ~pp_sep:Format.pp_print_space pp_attr ppf t.attrs
  in
  Format.fprintf ppf "@[<h><%a>@]" pp_body ()
