type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let kind_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | _ -> Stdlib.compare (kind_rank a) (kind_rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_error "expected a number, got %s" (match v with
      | Null -> "null" | Bool _ -> "a boolean" | Str _ -> "a string"
      | Int _ | Float _ -> assert false)

let arith name int_op float_op a b =
  match a, b with
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (as_float a) (as_float b))
  | _ -> type_error "%s: expected numbers" name

let add a b =
  match a, b with
  | Str x, Str y -> Str (x ^ y)
  | _ -> arith "+" ( + ) ( +. ) a b

let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

let div a b =
  match a, b with
  | Int x, Int y -> if y = 0 then type_error "division by zero" else Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (as_float a /. as_float b)
  | _ -> type_error "/: expected numbers"

let to_bool = function
  | Bool b -> b
  | _ -> type_error "expected a boolean"

let logical_and a b = Bool (to_bool a && to_bool b)
let logical_or a b = Bool (to_bool a || to_bool b)
let logical_not a = Bool (not (to_bool a))

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let of_literal s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None ->
    match float_of_string_opt s with
    | Some f -> Float f
    | None ->
      match s with
      | "true" -> Bool true
      | "false" -> Bool false
      | "null" -> Null
      | _ -> Str s
