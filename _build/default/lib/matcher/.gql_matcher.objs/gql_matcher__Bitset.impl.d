lib/matcher/bitset.ml: Bytes Char List
