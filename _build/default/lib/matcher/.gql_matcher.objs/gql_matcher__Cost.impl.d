lib/matcher/cost.ml: Array Flat_pattern Gql_graph Graph Hashtbl List Option
