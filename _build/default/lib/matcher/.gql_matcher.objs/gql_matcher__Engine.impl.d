lib/matcher/engine.ml: Cost Feasible Option Order Printf Refine Search Unix
