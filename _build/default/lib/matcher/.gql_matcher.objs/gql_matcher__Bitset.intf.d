lib/matcher/bitset.mli:
