lib/matcher/flat_pattern.ml: Array Format Gql_graph Graph List Neighborhood Option Pred Printf Profile Tuple Value
