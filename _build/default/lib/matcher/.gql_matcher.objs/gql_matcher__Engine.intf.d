lib/matcher/engine.mli: Cost Feasible Flat_pattern Gql_graph Gql_index Graph Refine Search
