lib/matcher/bipartite.ml: Array List Queue
