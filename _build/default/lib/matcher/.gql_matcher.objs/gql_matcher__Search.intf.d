lib/matcher/search.mli: Feasible Flat_pattern Gql_graph Graph
