lib/matcher/refine.ml: Array Bipartite Bitset Feasible Flat_pattern Gql_graph Graph Hashtbl List Option
