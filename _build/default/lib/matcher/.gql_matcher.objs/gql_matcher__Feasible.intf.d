lib/matcher/feasible.mli: Flat_pattern Gql_graph Gql_index Graph
