lib/matcher/order.ml: Array Cost Flat_pattern Gql_graph Graph List
