lib/matcher/refine.mli: Feasible Flat_pattern Gql_graph Graph
