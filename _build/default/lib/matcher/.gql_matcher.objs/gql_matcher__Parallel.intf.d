lib/matcher/parallel.mli: Engine Feasible Flat_pattern Gql_graph Graph Search
