lib/matcher/flat_pattern.mli: Format Gql_graph Graph Neighborhood Pred Profile
