lib/matcher/cost.mli: Flat_pattern Gql_graph Graph
