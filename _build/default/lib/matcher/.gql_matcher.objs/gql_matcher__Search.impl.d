lib/matcher/search.ml: Array Bitset Feasible Flat_pattern Gql_graph Graph List
