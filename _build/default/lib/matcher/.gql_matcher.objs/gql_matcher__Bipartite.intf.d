lib/matcher/bipartite.mli:
