lib/matcher/order.mli: Cost Flat_pattern
