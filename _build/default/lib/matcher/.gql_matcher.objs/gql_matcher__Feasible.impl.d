lib/matcher/feasible.ml: Array Flat_pattern Gql_graph Gql_index Graph Iso List Neighborhood Profile
