lib/matcher/parallel.ml: Array Domain Engine Feasible Flat_pattern List Option Order Refine Search
