(** The backtracking search of Algorithm 4.1 (second phase).

    Depth-first search over Φ(u₁) × … × Φ(u_k) in a given node order.
    [Check(uᵢ, v)] verifies the pattern edges from [uᵢ] to
    already-mapped nodes (existence, orientation, and the edge
    predicate Fe); the graph-wide predicate F is evaluated on complete
    mappings only. *)

open Gql_graph

type outcome = {
  mappings : int array list;
  (** Complete mappings φ (pattern node → data node), in discovery
      order. Truncated at [limit]. *)
  n_found : int;
  visited : int;  (** search-tree nodes expanded (Check calls) *)
  complete : bool;  (** false iff the search stopped at [limit] *)
}

val run :
  ?exhaustive:bool ->
  ?limit:int ->
  ?order:int array ->
  Flat_pattern.t ->
  Graph.t ->
  Feasible.space ->
  outcome
(** [run p g space] searches for pattern matchings within the candidate
    space. [exhaustive] (default true): all mappings, else stop at the
    first (§3.3's [exhaustive] option). [limit] caps the number of
    reported mappings regardless (the experiments stop at 1000).
    [order] defaults to the input order [0..k-1]. *)

val iter :
  ?order:int array ->
  f:(int array -> [ `Continue | `Stop ]) ->
  Flat_pattern.t ->
  Graph.t ->
  Feasible.space ->
  int
(** Streaming variant: [f] receives each mapping (the array is reused —
    copy it to retain); returns the number of mappings delivered. *)
