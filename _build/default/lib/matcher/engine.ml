
type strategy = {
  retrieval : Feasible.retrieval;
  refine : bool;
  refine_level : int option;
  optimize_order : bool;
  cost_model : Cost.model option;
}

let optimized =
  {
    retrieval = `Profiles;
    refine = true;
    refine_level = None;
    optimize_order = true;
    cost_model = None;
  }

let baseline =
  {
    retrieval = `Node_attrs;
    refine = false;
    refine_level = None;
    optimize_order = false;
    cost_model = None;
  }

let strategy_name s =
  let retr =
    match s.retrieval with
    | `Node_attrs -> "attrs"
    | `Profiles -> "profiles"
    | `Subgraphs -> "subgraphs"
  in
  Printf.sprintf "%s%s%s" retr
    (if s.refine then "+refine" else "")
    (if s.optimize_order then "+order" else "")

type timings = {
  t_retrieve : float;
  t_refine : float;
  t_order : float;
  t_search : float;
}

let total t = t.t_retrieve +. t.t_refine +. t.t_order +. t.t_search

type result = {
  outcome : Search.outcome;
  space_initial : Feasible.space;
  space_refined : Feasible.space;
  refine_stats : Refine.stats option;
  order : int array;
  timings : timings;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let run ?(strategy = optimized) ?(exhaustive = true) ?limit ?label_index
    ?profile_index p g =
  let space_initial, t_retrieve =
    timed (fun () ->
        Feasible.compute ~retrieval:strategy.retrieval ?label_index
          ?profile_index p g)
  in
  let (space_refined, refine_stats), t_refine =
    if strategy.refine then
      timed (fun () ->
          let s, st = Refine.refine ?level:strategy.refine_level p g space_initial in
          (s, Some st))
    else ((space_initial, None), 0.0)
  in
  let order, t_order =
    if strategy.optimize_order then
      timed (fun () ->
          let model =
            Option.value strategy.cost_model
              ~default:(Cost.Constant Cost.default_constant)
          in
          Order.greedy ~model p ~sizes:(Feasible.sizes space_refined))
    else (Order.identity p, 0.0)
  in
  let outcome, t_search =
    timed (fun () -> Search.run ~exhaustive ?limit ~order p g space_refined)
  in
  {
    outcome;
    space_initial;
    space_refined;
    refine_stats;
    order;
    timings = { t_retrieve; t_refine; t_order; t_search };
  }

let count_matches ?strategy ?limit p g =
  (run ?strategy ?limit p g).outcome.Search.n_found
