open Gql_graph

type outcome = {
  mappings : int array list;
  n_found : int;
  visited : int;
  complete : bool;
}

(* pattern edges from order.(i) to nodes earlier in the order, as
   (earlier-position source?, pattern edge id, other endpoint) *)
let back_edges p order =
  let g = p.Flat_pattern.structure in
  let k = Array.length order in
  let pos = Array.make (Flat_pattern.size p) (-1) in
  Array.iteri (fun i u -> pos.(u) <- i) order;
  Array.init k (fun i ->
      let u = order.(i) in
      let acc = ref [] in
      Graph.iter_edges g ~f:(fun e { Graph.src; dst; _ } ->
          if src = u && pos.(dst) < i then acc := (`Out, e, dst) :: !acc
          else if dst = u && pos.(src) < i then acc := (`In, e, src) :: !acc);
      !acc)

let generic_run ?(order = [||]) p g space ~on_match =
  let k = Flat_pattern.size p in
  let order = if Array.length order = 0 then Array.init k (fun i -> i) else order in
  let back = back_edges p order in
  let phi = Array.make k (-1) in
  let used = Bitset.create (max 1 (Graph.n_nodes g)) in
  let visited = ref 0 in
  let directed = Graph.directed p.Flat_pattern.structure in
  let check i v =
    incr visited;
    List.for_all
      (fun (dir, pe, u') ->
        let v' = phi.(u') in
        let s, d =
          match dir with
          | `Out -> (v, v')
          | `In -> (v', v)
        in
        let candidate_edges =
          if directed then
            List.filter
              (fun ge ->
                let e = Graph.edge g ge in
                e.Graph.src = s && e.Graph.dst = d)
              (Graph.find_all_edges g s d)
          else Graph.find_all_edges g s d
        in
        List.exists (fun ge -> Flat_pattern.edge_compat p g pe ge) candidate_edges)
      back.(i)
  in
  let stopped = ref false in
  let rec go i =
    if !stopped then ()
    else if i >= k then begin
      if Flat_pattern.global_holds p g phi then
        match on_match phi with `Continue -> () | `Stop -> stopped := true
    end
    else begin
      let u = order.(i) in
      List.iter
        (fun v ->
          if (not !stopped) && (not (Bitset.mem used v)) && check i v then begin
            phi.(u) <- v;
            Bitset.add used v;
            go (i + 1);
            phi.(u) <- -1;
            Bitset.remove used v
          end)
        space.Feasible.candidates.(u)
    end
  in
  if k = 0 then ()
  else if Array.exists (fun c -> c = []) space.Feasible.candidates then ()
  else go 0;
  (!visited, !stopped)

let run ?(exhaustive = true) ?limit ?order p g space =
  let results = ref [] in
  let n = ref 0 in
  let on_match phi =
    incr n;
    results := Array.copy phi :: !results;
    let hit_limit = match limit with Some l -> !n >= l | None -> false in
    if hit_limit || not exhaustive then `Stop else `Continue
  in
  let visited, _stopped = generic_run ?order p g space ~on_match in
  let hit_limit = match limit with Some l -> !n >= l | None -> false in
  { mappings = List.rev !results; n_found = !n; visited; complete = not hit_limit }

let iter ?order ~f p g space =
  let n = ref 0 in
  let on_match phi =
    incr n;
    f phi
  in
  let _visited, _ = generic_run ?order p g space ~on_match in
  !n
