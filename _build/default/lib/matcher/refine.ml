open Gql_graph

type stats = {
  levels_run : int;
  pairs_checked : int;
  removed : int;
}

let undirected_neighbors g v =
  let out = Array.to_list (Graph.neighbors g v) |> List.map fst in
  let all =
    if Graph.directed g then
      out @ (Array.to_list (Graph.in_neighbors g v) |> List.map fst)
    else out
  in
  List.sort_uniq compare all

let pattern_neighbors p u = undirected_neighbors p.Flat_pattern.structure u
let graph_neighbors g v = undirected_neighbors g v

(* B(u,v): left = neighbors of u in the pattern, right = neighbors of v
   in the graph, edge iff v' ∈ Φ(u'). *)
let has_semi_perfect p g phi u v =
  let nu = pattern_neighbors p u in
  let nv = Array.of_list (graph_neighbors g v) in
  let adj =
    List.map
      (fun u' ->
        let ns = ref [] in
        Array.iteri (fun j v' -> if Bitset.mem phi.(u') v' then ns := j :: !ns) nv;
        !ns)
      nu
  in
  Bipartite.semi_perfect
    { nl = List.length nu; nr = Array.length nv; adj = Array.of_list adj }

let to_space k phi =
  { Feasible.candidates = Array.init k (fun u -> Bitset.to_list phi.(u)) }

let refine ?level p g space =
  let k = Flat_pattern.size p in
  let n = Graph.n_nodes g in
  let level = Option.value level ~default:k in
  let phi =
    Array.map (fun l -> Bitset.of_list n l) space.Feasible.candidates
  in
  let marked : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let mark u v = Hashtbl.replace marked (u, v) () in
  Array.iteri (fun u s -> Bitset.iter s (fun v -> mark u v)) phi;
  let pairs_checked = ref 0 in
  let removed = ref 0 in
  let levels_run = ref 0 in
  (try
     for _ = 1 to level do
       if Hashtbl.length marked = 0 then raise Exit;
       incr levels_run;
       let batch = Hashtbl.fold (fun pair () acc -> pair :: acc) marked [] in
       List.iter
         (fun (u, v) ->
           (* the pair may have been removed by an earlier check in this
              batch *)
           if Hashtbl.mem marked (u, v) && Bitset.mem phi.(u) v then begin
             incr pairs_checked;
             if has_semi_perfect p g phi u v then Hashtbl.remove marked (u, v)
             else begin
               Hashtbl.remove marked (u, v);
               Bitset.remove phi.(u) v;
               incr removed;
               List.iter
                 (fun u' ->
                   List.iter
                     (fun v' -> if Bitset.mem phi.(u') v' then mark u' v')
                     (graph_neighbors g v))
                 (pattern_neighbors p u)
             end
           end
           else Hashtbl.remove marked (u, v))
         batch
     done
   with Exit -> ());
  ( to_space k phi,
    { levels_run = !levels_run; pairs_checked = !pairs_checked; removed = !removed } )

let refine_naive ?level p g space =
  let k = Flat_pattern.size p in
  let n = Graph.n_nodes g in
  let level = Option.value level ~default:k in
  let phi =
    Array.map (fun l -> Bitset.of_list n l) space.Feasible.candidates
  in
  let pairs_checked = ref 0 in
  let removed = ref 0 in
  let levels_run = ref 0 in
  (try
     for _ = 1 to level do
       incr levels_run;
       let changed = ref false in
       for u = 0 to k - 1 do
         List.iter
           (fun v ->
             incr pairs_checked;
             if not (has_semi_perfect p g phi u v) then begin
               Bitset.remove phi.(u) v;
               incr removed;
               changed := true
             end)
           (Bitset.to_list phi.(u))
       done;
       if not !changed then raise Exit
     done
   with Exit -> ());
  ( to_space k phi,
    { levels_run = !levels_run; pairs_checked = !pairs_checked; removed = !removed } )
