(** Search-order selection (§4.4).

    [greedy] is the paper's implementation choice: start from the
    smallest candidate set and, at each join, pick the leaf node
    minimizing the estimated join cost, preferring nodes connected to
    the partial order so the search stays backtracking-friendly.
    [exhaustive] enumerates all (connected-first) left-deep orders by
    dynamic programming over subsets — exponential, usable for small
    patterns and as a test oracle. *)

val greedy :
  ?model:Cost.model -> Flat_pattern.t -> sizes:int array -> int array

val exhaustive :
  ?model:Cost.model -> Flat_pattern.t -> sizes:int array -> int array
(** Optimal left-deep order under the cost model. Raises
    [Invalid_argument] for patterns of more than 20 nodes. *)

val identity : Flat_pattern.t -> int array
(** The input order [0 .. k-1] (the "w/o optimized order" baseline). *)
