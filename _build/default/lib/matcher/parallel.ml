let default_domains () = min 8 (Domain.recommended_domain_count ())

let slices k xs =
  (* round-robin so dense candidate regions spread across domains *)
  let buckets = Array.make k [] in
  List.iteri (fun i x -> buckets.(i mod k) <- x :: buckets.(i mod k)) xs;
  Array.to_list buckets |> List.filter (fun b -> b <> []) |> List.map List.rev

let search ?domains ?order ?limit_per_domain p g space =
  let k = Flat_pattern.size p in
  let n_domains = max 1 (Option.value domains ~default:(default_domains ())) in
  let order =
    match order with
    | Some o when Array.length o > 0 -> o
    | _ -> Array.init k (fun i -> i)
  in
  if k = 0 || n_domains = 1 then Search.run ?limit:limit_per_domain ~order p g space
  else begin
    let u0 = order.(0) in
    let parts = slices n_domains space.Feasible.candidates.(u0) in
    let workers =
      List.map
        (fun part ->
          let space' =
            {
              Feasible.candidates =
                Array.mapi
                  (fun u c -> if u = u0 then part else c)
                  space.Feasible.candidates;
            }
          in
          Domain.spawn (fun () ->
              Search.run ?limit:limit_per_domain ~order p g space'))
        parts
    in
    let outcomes = List.map Domain.join workers in
    List.fold_left
      (fun acc o ->
        {
          Search.mappings = acc.Search.mappings @ o.Search.mappings;
          n_found = acc.Search.n_found + o.Search.n_found;
          visited = acc.Search.visited + o.Search.visited;
          complete = acc.Search.complete && o.Search.complete;
        })
      { Search.mappings = []; n_found = 0; visited = 0; complete = true }
      outcomes
  end

let count_matches ?domains ?(strategy = Engine.optimized) p g =
  let space =
    Feasible.compute ~retrieval:strategy.Engine.retrieval p g
  in
  let space =
    if strategy.Engine.refine then
      fst (Refine.refine ?level:strategy.Engine.refine_level p g space)
    else space
  in
  let order =
    if strategy.Engine.optimize_order then
      Order.greedy p ~sizes:(Feasible.sizes space)
    else Order.identity p
  in
  (search ?domains ~order p g space).Search.n_found
