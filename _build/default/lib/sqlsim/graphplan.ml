open Gql_graph
module Flat_pattern = Gql_matcher.Flat_pattern

let db_of_graph g =
  let db = Rel.create_db () in
  Rel.create_table db "V" ~columns:[ "vid"; "label" ];
  Rel.create_table db "E" ~columns:[ "vid1"; "vid2" ];
  Graph.iter_nodes g ~f:(fun v ->
      Rel.insert db "V" [| Value.Int v; Value.Str (Graph.label g v) |]);
  Graph.iter_edges g ~f:(fun _ e ->
      Rel.insert db "E" [| Value.Int e.Graph.src; Value.Int e.Graph.dst |];
      if (not (Graph.directed g)) && e.Graph.src <> e.Graph.dst then
        Rel.insert db "E" [| Value.Int e.Graph.dst; Value.Int e.Graph.src |]);
  db

let query_of_pattern p =
  let k = Flat_pattern.size p in
  let pg = p.Flat_pattern.structure in
  let v_alias u = Printf.sprintf "V%d" (u + 1) in
  let e_alias i = Printf.sprintf "E%d" (i + 1) in
  let froms =
    List.init k (fun u -> (v_alias u, "V"))
    @ List.init (Graph.n_edges pg) (fun i -> (e_alias i, "E"))
  in
  let label_preds =
    List.filter_map
      (fun u ->
        match Flat_pattern.required_label p u with
        | Some l -> Some (Cq.Eq_const ((v_alias u, "label"), Value.Str l))
        | None ->
          if Pred.equal p.Flat_pattern.node_preds.(u) Pred.True then None
          else
            invalid_arg
              "Graphplan.query_of_pattern: only label-equality node predicates \
               are expressible in the V/E schema")
      (List.init k Fun.id)
  in
  let edge_preds =
    List.concat
      (List.init (Graph.n_edges pg) (fun i ->
           let e = Graph.edge pg i in
           [
             Cq.Eq_join ((v_alias e.Graph.src, "vid"), (e_alias i, "vid1"));
             Cq.Eq_join ((v_alias e.Graph.dst, "vid"), (e_alias i, "vid2"));
           ]))
  in
  let neq_preds =
    List.concat
      (List.init k (fun u ->
           List.filter_map
             (fun v ->
               if v > u then
                 Some (Cq.Neq_join ((v_alias u, "vid"), (v_alias v, "vid")))
               else None)
             (List.init k Fun.id)))
  in
  {
    Cq.froms;
    preds = label_preds @ edge_preds @ neq_preds;
    select = List.init k (fun u -> (v_alias u, "vid"));
  }

let count_matches ?limit ?timeout db p =
  Cq.count ?limit ?timeout db (query_of_pattern p)

let find_matches ?limit ?timeout db p =
  let o = Cq.execute ?limit ?timeout db (query_of_pattern p) in
  List.map
    (fun row ->
      Array.map (function Value.Int v -> v | _ -> invalid_arg "vid") row)
    o.Cq.rows
