(** The SQL-based implementation of graph pattern matching (§1.2,
    Figure 4.2).

    A graph is stored as two tables — V(vid, label) and E(vid1, vid2) —
    with B-tree indexes on every field (the paper's MySQL setup;
    undirected edges are stored in both orientations, as in the Datalog
    translation of Figure 4.14). A pattern becomes the multi-join
    conjunctive query of Figure 4.2: one V alias per pattern node
    constrained to its label, one E alias per pattern edge joined on
    both endpoints, and pairwise inequality predicates enforcing
    injectivity. *)

open Gql_graph

val db_of_graph : Graph.t -> Rel.db

val query_of_pattern : Gql_matcher.Flat_pattern.t -> Cq.query
(** Supports label-constrained patterns (the experimental workloads).
    Raises [Invalid_argument] on patterns with attribute predicates the
    V/E schema cannot express. *)

val count_matches :
  ?limit:int -> ?timeout:float -> Rel.db -> Gql_matcher.Flat_pattern.t -> int * bool
(** Number of result tuples and whether the query ran to completion
    (false: hit the limit or the timeout). *)

val find_matches :
  ?limit:int -> ?timeout:float -> Rel.db -> Gql_matcher.Flat_pattern.t ->
  int array list
(** The matched node-id tuples, one per result row. *)
