open Gql_graph

type row = Value.t array

module Vtree = Gql_index.Btree.Make (Value)

type table = {
  name : string;
  cols : string array;
  mutable rows : row array;
  mutable n : int;
  mutable indexes : int list Vtree.t array;  (* per column: value -> row ids (desc) *)
}

type db = (string, table) Hashtbl.t

let create_db () = Hashtbl.create 8

let create_table db name ~columns =
  if Hashtbl.mem db name then invalid_arg ("Rel.create_table: duplicate " ^ name);
  let cols = Array.of_list columns in
  Hashtbl.add db name
    {
      name;
      cols;
      rows = Array.make 16 [||];
      n = 0;
      indexes = Array.map (fun _ -> Vtree.empty ()) cols;
    }

let table db name =
  match Hashtbl.find_opt db name with
  | Some t -> t
  | None -> invalid_arg ("Rel.table: no such table " ^ name)

let table_name t = t.name
let columns t = Array.to_list t.cols

let column_index t col =
  let rec go i =
    if i >= Array.length t.cols then
      invalid_arg (Printf.sprintf "Rel: table %s has no column %s" t.name col)
    else if t.cols.(i) = col then i
    else go (i + 1)
  in
  go 0

let insert db name (r : row) =
  let t = table db name in
  if Array.length r <> Array.length t.cols then
    invalid_arg "Rel.insert: row arity mismatch";
  if t.n = Array.length t.rows then begin
    let bigger = Array.make (2 * t.n) [||] in
    Array.blit t.rows 0 bigger 0 t.n;
    t.rows <- bigger
  end;
  let id = t.n in
  t.rows.(id) <- r;
  t.n <- id + 1;
  Array.iteri
    (fun c idx ->
      t.indexes.(c) <-
        Vtree.update r.(c)
          (function None -> Some [ id ] | Some ids -> Some (id :: ids))
          idx)
    t.indexes

let cardinality t = t.n
let row t i = t.rows.(i)

let scan t = Seq.init t.n Fun.id

let index_lookup t ~column v =
  let c = column_index t column in
  match Vtree.find v t.indexes.(c) with
  | Some ids -> List.rev ids
  | None -> []

let index_distinct t ~column =
  let c = column_index t column in
  Vtree.cardinal t.indexes.(c)
