open Gql_graph

type col = string * string

type pred =
  | Eq_const of col * Value.t
  | Eq_join of col * col
  | Neq_join of col * col

type query = {
  froms : (string * string) list;
  preds : pred list;
  select : col list;
}

type access =
  | Full_scan
  | Index_const of string * Value.t
  | Index_join of string * col

type step = {
  s_alias : string;
  s_table : string;
  s_access : access;
  s_filters : pred list;
}

type plan = step list

let pred_aliases = function
  | Eq_const ((a, _), _) -> [ a ]
  | Eq_join ((a, _), (b, _)) | Neq_join ((a, _), (b, _)) -> [ a; b ]

(* estimated rows of [alias] after constant predicates *)
let base_estimate db query alias table =
  let t = Rel.table db table in
  let card = float_of_int (max 1 (Rel.cardinality t)) in
  List.fold_left
    (fun est p ->
      match p with
      | Eq_const ((a, c), _) when a = alias ->
        est /. float_of_int (max 1 (Rel.index_distinct t ~column:c))
      | _ -> est)
    card query.preds

let plan db query =
  let froms = query.froms in
  let estimates =
    List.map (fun (a, tbl) -> (a, base_estimate db query a tbl)) froms
  in
  let est a = List.assoc a estimates in
  let bound = Hashtbl.create 8 in
  let remaining = ref froms in
  let steps = ref [] in
  let pick_access alias table =
    (* prefer: join index on a bound column, then constant index, then scan *)
    let t = Rel.table db table in
    let joinable =
      List.find_map
        (fun p ->
          match p with
          | Eq_join ((a, c), ((b, _) as other)) when a = alias && Hashtbl.mem bound b ->
            Some (Index_join (c, other))
          | Eq_join (((b, _) as other), (a, c)) when a = alias && Hashtbl.mem bound b ->
            Some (Index_join (c, other))
          | _ -> None)
        query.preds
    in
    match joinable with
    | Some acc -> (acc, est alias /. float_of_int (max 1 (Rel.cardinality t)))
    | None ->
      let const =
        List.find_map
          (fun p ->
            match p with
            | Eq_const ((a, c), v) when a = alias -> Some (Index_const (c, v))
            | _ -> None)
          query.preds
      in
      (match const with
      | Some acc -> (acc, est alias)
      | None -> (Full_scan, est alias))
  in
  while !remaining <> [] do
    (* choose the remaining alias with the smallest estimated cost *)
    let scored =
      List.map
        (fun (a, tbl) ->
          let access, cost = pick_access a tbl in
          (* an index join is much cheaper than a cross product *)
          let cost =
            match access with
            | Index_join _ -> cost
            | Index_const _ -> 10.0 *. cost
            | Full_scan -> 100.0 *. cost
          in
          (cost, a, tbl, access))
        !remaining
    in
    let _, a, tbl, access =
      List.fold_left
        (fun ((bc, _, _, _) as best) ((c, _, _, _) as cand) ->
          if c < bc then cand else best)
        (List.hd scored) (List.tl scored)
    in
    Hashtbl.add bound a ();
    remaining := List.filter (fun (a', _) -> a' <> a) !remaining;
    let filters =
      List.filter
        (fun p ->
          let aliases = pred_aliases p in
          List.mem a aliases && List.for_all (Hashtbl.mem bound) aliases)
        query.preds
    in
    steps := { s_alias = a; s_table = tbl; s_access = access; s_filters = filters } :: !steps
  done;
  List.rev !steps

let pp_access ppf = function
  | Full_scan -> Format.pp_print_string ppf "scan"
  | Index_const (c, v) -> Format.fprintf ppf "index %s = %a" c Value.pp v
  | Index_join (c, (a, c')) -> Format.fprintf ppf "index %s = %s.%s" c a c'

let pp_plan ppf plan =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun ppf s ->
      Format.fprintf ppf "%s as %s via %a (%d filters)" s.s_table s.s_alias
        pp_access s.s_access (List.length s.s_filters))
    ppf plan

type outcome = {
  rows : Value.t array list;
  n_rows : int;
  complete : bool;
  elapsed : float;
}

exception Stop

let execute ?limit ?timeout db query =
  let t0 = Unix.gettimeofday () in
  let steps = Array.of_list (plan db query) in
  let tables = Array.map (fun s -> Rel.table db s.s_table) steps in
  let binding : (string, Value.t array) Hashtbl.t = Hashtbl.create 8 in
  let results = ref [] in
  let n = ref 0 in
  let complete = ref true in
  let checks = ref 0 in
  let get (a, c) =
    let r = Hashtbl.find binding a in
    r.(Rel.column_index (Rel.table db (List.assoc a query.froms)) c)
  in
  let filter_holds p =
    match p with
    | Eq_const (col, v) -> Value.equal (get col) v
    | Eq_join (c1, c2) -> Value.equal (get c1) (get c2)
    | Neq_join (c1, c2) -> not (Value.equal (get c1) (get c2))
  in
  let tick () =
    incr checks;
    if !checks land 0xFFF = 0 then
      match timeout with
      | Some limit_s when Unix.gettimeofday () -. t0 > limit_s ->
        complete := false;
        raise Stop
      | _ -> ()
  in
  let rec go i =
    if i >= Array.length steps then begin
      (match limit with
      | Some l when !n >= l ->
        complete := false;
        raise Stop
      | _ -> ());
      incr n;
      results := Array.of_list (List.map get query.select) :: !results
    end
    else begin
      let s = steps.(i) in
      let t = tables.(i) in
      let candidates =
        match s.s_access with
        | Full_scan -> List.of_seq (Rel.scan t)
        | Index_const (c, v) -> Rel.index_lookup t ~column:c v
        | Index_join (c, outer) -> Rel.index_lookup t ~column:c (get outer)
      in
      List.iter
        (fun rid ->
          tick ();
          Hashtbl.replace binding s.s_alias (Rel.row t rid);
          if List.for_all filter_holds s.s_filters then go (i + 1))
        candidates;
      Hashtbl.remove binding s.s_alias
    end
  in
  (try go 0 with Stop -> ());
  {
    rows = List.rev !results;
    n_rows = !n;
    complete = !complete;
    elapsed = Unix.gettimeofday () -. t0;
  }

let count ?limit ?timeout db query =
  let o = execute ?limit ?timeout db query in
  (o.n_rows, o.complete)
