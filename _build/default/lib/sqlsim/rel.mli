(** A minimal in-memory relational engine — the SQL baseline substrate.

    The paper's experimental comparison runs the Figure 4.2 multi-join
    query on MySQL over two tables V(vid, label) and E(vid1, vid2) with
    B-tree indexes on every field. This module provides exactly that
    storage layer: named tables of typed rows with secondary B-tree
    indexes per column. Being fully in memory it is, if anything, a
    {e generous} stand-in for MySQL — the architectural comparison
    (relational plans lose the global graph view) is what matters. *)

open Gql_graph

type row = Value.t array

type table

type db

val create_db : unit -> db

val create_table : db -> string -> columns:string list -> unit
(** Every column gets a B-tree index, as in the paper's setup. *)

val insert : db -> string -> row -> unit

val table : db -> string -> table
val table_name : table -> string
val columns : table -> string list
val column_index : table -> string -> int
val cardinality : table -> int
val row : table -> int -> row
val scan : table -> int Seq.t
(** All row ids. *)

val index_lookup : table -> column:string -> Value.t -> int list
(** Row ids whose column equals the value (via the B-tree index). *)

val index_distinct : table -> column:string -> int
(** Number of distinct values in the column — the selectivity statistic
    a System-R style optimizer uses. *)
