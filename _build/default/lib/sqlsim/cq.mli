(** Conjunctive queries over {!Rel} — the SQL SELECT/FROM/WHERE subset
    the Figure 4.2 translation needs, with a System-R style left-deep
    planner (index-nested-loop joins) and a timeout-guarded executor.

    This is deliberately a {e relational} optimizer: it sees tables,
    join predicates, and per-column selectivities — never the graph
    structure. That blindness is the point of the comparison (§1.2). *)

open Gql_graph

type col = string * string  (** alias.column *)

type pred =
  | Eq_const of col * Value.t
  | Eq_join of col * col
  | Neq_join of col * col

type query = {
  froms : (string * string) list;  (** (alias, table) *)
  preds : pred list;
  select : col list;
}

(** {1 Plans} *)

type access =
  | Full_scan
  | Index_const of string * Value.t  (** column, key *)
  | Index_join of string * col  (** column, bound outer column *)

type step = {
  s_alias : string;
  s_table : string;
  s_access : access;
  s_filters : pred list;  (** predicates fully bound at this step *)
}

type plan = step list

val plan : Rel.db -> query -> plan
(** Greedy left-deep join order: start from the estimated-smallest
    alias, repeatedly add the alias with the cheapest access path
    (preferring index-nested-loop joins over Cartesian products),
    costed from table cardinalities and per-column distinct counts. *)

val pp_plan : Format.formatter -> plan -> unit

(** {1 Execution} *)

type outcome = {
  rows : Value.t array list;  (** projected tuples, truncated at [limit] *)
  n_rows : int;
  complete : bool;  (** false when the limit or timeout was hit *)
  elapsed : float;
}

val execute : ?limit:int -> ?timeout:float -> Rel.db -> query -> outcome
(** [timeout] in seconds (wall clock). *)

val count : ?limit:int -> ?timeout:float -> Rel.db -> query -> int * bool
