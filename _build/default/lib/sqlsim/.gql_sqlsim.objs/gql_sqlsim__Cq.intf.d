lib/sqlsim/cq.mli: Format Gql_graph Rel Value
