lib/sqlsim/rel.ml: Array Fun Gql_graph Gql_index Hashtbl List Printf Seq Value
