lib/sqlsim/rel.mli: Gql_graph Seq Value
