lib/sqlsim/cq.ml: Array Format Gql_graph Hashtbl List Rel Unix Value
