lib/sqlsim/graphplan.ml: Array Cq Fun Gql_graph Gql_matcher Graph List Pred Printf Rel Value
