lib/sqlsim/graphplan.mli: Cq Gql_graph Gql_matcher Graph Rel
