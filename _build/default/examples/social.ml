(* Social-network analytics: selection + aggregation (the §7 extension
   operators) and parallel matching over a single large graph.

   Run with:  dune exec examples/social.exe
*)

open Gql_core
open Gql_graph
module Aggregate = Gql_core.Aggregate

(* a small synthetic social network: people with cities and ages,
   "follows" edges (directed) *)
let network ?(people = 400) () =
  let rng = Gql_datasets.Rng.create 77 in
  let cities = [| "york"; "leeds"; "hull"; "bath" |] in
  let b = Graph.Builder.create ~directed:true ~name:"social" () in
  for i = 0 to people - 1 do
    ignore
      (Graph.Builder.add_node b
         ~name:(Printf.sprintf "u%d" i)
         (Tuple.make ~tag:"person"
            [
              ("label", Value.Str "person");
              ("city", Value.Str (Gql_datasets.Rng.choose rng cities));
              ("age", Value.Int (16 + Gql_datasets.Rng.int rng 60));
            ]))
  done;
  (* preferential follows *)
  let n_edges = people * 6 in
  let seen = Hashtbl.create n_edges in
  let added = ref 0 in
  while !added < n_edges do
    let a = Gql_datasets.Rng.int rng people in
    let c = Gql_datasets.Rng.int rng people in
    let target = min c (Gql_datasets.Rng.int rng people) (* skew to low ids *) in
    if a <> target && not (Hashtbl.mem seen (a, target)) then begin
      Hashtbl.add seen (a, target) ();
      ignore (Graph.Builder.add_edge b a target);
      incr added
    end
  done;
  Graph.Builder.build b

let () =
  let g = network () in
  Format.printf "Social network: %d people, %d follows@." (Graph.n_nodes g)
    (Graph.n_edges g);

  (* mutual follows between different cities *)
  let mutual =
    Gql.find_matches
      ~pattern:
        {|graph P {
            node a <person>; node b <person>;
            edge e1 (a, b); edge e2 (b, a);
          } where P.a.city != P.b.city|}
      g
  in
  Format.printf "Cross-city mutual follows (ordered pairs): %d@." (List.length mutual);

  (* aggregate the matches: group by the follower's city, average age *)
  let entries = List.map (fun m -> Algebra.M m) mutual in
  Format.printf "@.By follower city:@.";
  List.iter
    (fun (city, group) ->
      Format.printf "  %-8s %3d pairs, mean follower age %s@."
        (Value.to_string city) (List.length group)
        (Value.to_string (Aggregate.avg ~key:(Pred.path [ "a"; "age" ]) group)))
    (Aggregate.group_by ~key:(Pred.path [ "a"; "city" ]) entries);

  (* ranking: the oldest follower in a mutual pair *)
  (match
     Aggregate.top_k ~descending:true ~key:(Pred.path [ "a"; "age" ]) 1 entries
   with
  | [ Algebra.M m ] ->
    let t = Option.get (Matched.node_tuple m "a") in
    Format.printf "@.Oldest mutual follower: age %s from %s@."
      (Value.to_string (Tuple.get t "age"))
      (Value.to_string (Tuple.get t "city"))
  | _ -> ());

  (* parallel matching of a directed triangle (a follows b follows c
     follows a) across domains *)
  let triangle =
    Gql.pattern_of_string
      {|graph T {
          node a <person>; node b <person>; node c <person>;
          edge e1 (a, b); edge e2 (b, c); edge e3 (c, a);
        }|}
  in
  let t0 = Unix.gettimeofday () in
  let seq = Gql_matcher.Engine.count_matches triangle g in
  let t_seq = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let par = Gql_matcher.Parallel.count_matches ~domains:4 triangle g in
  let t_par = Unix.gettimeofday () -. t0 in
  Format.printf
    "@.Follow-triangles: %d (sequential %.1f ms, 4 domains %.1f ms on %d core(s))@."
    seq (1000.0 *. t_seq) (1000.0 *. t_par)
    (Domain.recommended_domain_count ());
  assert (seq = par)
