examples/quickstart.ml: Eval Format Gql Gql_core Gql_graph Graph List Matched Tuple Value
