examples/rdf_shipping.ml: Eval Format Gql Gql_core Gql_graph Graph Tuple Value
