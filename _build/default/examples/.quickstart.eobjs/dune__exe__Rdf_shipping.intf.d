examples/rdf_shipping.mli:
