examples/social.ml: Algebra Domain Format Gql Gql_core Gql_datasets Gql_graph Gql_matcher Graph Hashtbl List Matched Option Pred Printf Tuple Unix Value
