examples/protein_motif.mli:
