examples/coauthors.mli:
