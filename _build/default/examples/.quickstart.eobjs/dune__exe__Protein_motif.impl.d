examples/protein_motif.ml: Format Gql_core Gql_datasets Gql_graph Gql_index Gql_matcher Graph List Ppi Queries
