examples/chemistry.ml: Format Gql Gql_core Gql_datasets Gql_graph Graph Hashtbl List Motif Option Tuple Value
