examples/quickstart.mli:
