examples/coauthors.ml: Eval Format Gql Gql_core Gql_datasets Gql_graph Graph List Printf Tuple Value
