examples/social.mli:
