examples/chemistry.mli:
