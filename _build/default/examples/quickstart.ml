(* Quickstart: the GraphQL API in five minutes.

   Build a graph, match a pattern against it, inspect the bindings, and
   run a complete FLWR query. Run with:

     dune exec examples/quickstart.exe
*)

open Gql_core
open Gql_graph

let () =
  (* 1. A data graph, written in GraphQL's textual syntax (Fig 4.3/4.7) *)
  let g =
    Gql.graph_of_string
      {|graph Friends {
          node alice  <person name="Alice"  age=34>;
          node bob    <person name="Bob"    age=27>;
          node carol  <person name="Carol"  age=41>;
          node dave   <person name="Dave"   age=29>;
          edge e1 (alice, bob)   <since=2015>;
          edge e2 (bob, carol)   <since=2019>;
          edge e3 (carol, alice) <since=2012>;
          edge e4 (carol, dave)  <since=2021>;
        }|}
  in
  Format.printf "Loaded graph:@.%a@.@." Graph.pp g;

  (* 2. A graph pattern: a triangle of people, one of them over 30 *)
  let matches =
    Gql.find_matches
      ~pattern:
        {|graph P {
            node v1; node v2; node v3;
            edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v1);
          } where v1.age > 30|}
      g
  in
  Format.printf "Triangle matches with v1 older than 30: %d@." (List.length matches);
  List.iter
    (fun m ->
      let name v =
        match Matched.node_tuple m v with
        | Some t -> Value.to_string (Tuple.get t "name")
        | None -> "?"
      in
      Format.printf "  v1=%s v2=%s v3=%s@." (name "v1") (name "v2") (name "v3"))
    matches;

  (* 3. Bulk rewriting with a FLWR query: a "who knows whom" summary
     graph built by composition, names as labels *)
  let result =
    Gql.run_query
      ~docs:[ ("friends", [ g ]) ]
      {|for graph P { node a <person>; node b <person>; edge e (a, b); }
          exhaustive in doc("friends")
        where P.a.age < P.b.age
        return graph {
          node x <label=P.a.name>;
          node y <label=P.b.name>;
          edge e (x, y) <gap = P.b.age - P.a.age>;
        }|}
  in
  Format.printf "@.Age-gap edges (younger -> older):@.";
  List.iter
    (fun g ->
      Graph.iter_edges g ~f:(fun _ e ->
          Format.printf "  %s -> %s (gap %s)@."
            (Graph.label g e.Graph.src) (Graph.label g e.Graph.dst)
            (Value.to_string (Tuple.get e.Graph.etuple "gap"))))
    (Eval.returned result)
