(* The running example of the paper (Figures 4.12 and 4.13): build a
   co-authorship graph from a collection of papers with a single FLWR
   query whose let-template folds every author pair into an accumulated
   graph, unifying authors by name.

   Run with:  dune exec examples/coauthors.exe
*)

open Gql_core
open Gql_graph

(* the exact DBLP collection of Figure 4.13 *)
let figure_4_13_collection () =
  let paper authors =
    let b = Graph.Builder.create () in
    List.iteri
      (fun i name ->
        ignore
          (Graph.Builder.add_node b
             ~name:(Printf.sprintf "v%d" (i + 1))
             (Tuple.make ~tag:"author" [ ("name", Value.Str name) ])))
      authors;
    Graph.Builder.build b
  in
  [ paper [ "A"; "B" ]; paper [ "C"; "D"; "A" ] ]

let coauthor_query =
  {|graph P { node v1 <author>; node v2 <author>; };
    C := graph {};
    for P exhaustive in doc("DBLP")
    where P.v1.name < P.v2.name
    let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name=C.v1.name;
      unify P.v2, C.v2 where P.v2.name=C.v2.name;
    }|}

let print_coauthorship c =
  Format.printf "  %d authors, %d co-authorship edges@." (Graph.n_nodes c)
    (Graph.n_edges c);
  Graph.iter_edges c ~f:(fun _ e ->
      let name v = Value.to_string (Tuple.get (Graph.node_tuple c v) "name") in
      Format.printf "  %s -- %s@." (name e.Graph.src) (name e.Graph.dst))

let () =
  Format.printf "Figure 4.13 walkthrough:@.";
  let result =
    Gql.run_query ~docs:[ ("DBLP", figure_4_13_collection ()) ] coauthor_query
  in
  (match Eval.var result "C" with
  | Some c -> print_coauthorship c
  | None -> failwith "no co-authorship graph produced");

  (* the same query over a larger generated DBLP-like collection,
     restricted to SIGMOD papers as in Figure 4.12 *)
  Format.printf "@.SIGMOD co-authorships over 300 generated papers:@.";
  let papers = Gql_datasets.Dblp.generate ~n_papers:300 () in
  let sigmod_query =
    {|graph P { node v1 <author>; node v2 <author>; } where P.booktitle="SIGMOD";
      C := graph {};
      for P exhaustive in doc("DBLP")
      where P.v1.name < P.v2.name
      let C := graph {
        graph C;
        node P.v1, P.v2;
        edge e1 (P.v1, P.v2);
        unify P.v1, C.v1 where P.v1.name=C.v1.name;
        unify P.v2, C.v2 where P.v2.name=C.v2.name;
      }|}
  in
  let result = Gql.run_query ~docs:[ ("DBLP", papers) ] sigmod_query in
  match Eval.var result "C" with
  | Some c ->
    Format.printf "  %d authors, %d co-authorship edges@." (Graph.n_nodes c)
      (Graph.n_edges c);
    (* most-connected author *)
    let best = ref 0 in
    Graph.iter_nodes c ~f:(fun v ->
        if Graph.degree c v > Graph.degree c !best then best := v);
    if Graph.n_nodes c > 0 then
      Format.printf "  most collaborative: %s (%d coauthors)@."
        (Value.to_string (Tuple.get (Graph.node_tuple c !best) "name"))
        (Graph.degree c !best)
  | None -> failwith "no co-authorship graph produced"
