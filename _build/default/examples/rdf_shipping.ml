(* The RDF example from the paper's introduction:

   "Find all instances from an RDF graph where two departments of a
   company share the same shipping company. The query graph (of three
   nodes and two edges) has the constraints that nodes share the same
   company attribute and the edges are labeled by a 'shipping'
   attribute. Report the result as a single graph with departments as
   nodes and edges between nodes that share a shipper."

   Run with:  dune exec examples/rdf_shipping.exe
*)

open Gql_core
open Gql_graph

(* a small RDF-ish graph: departments, shippers, typed edges *)
let rdf_graph () =
  Gql.graph_of_string
    {|graph RDF {
        node d1 <department name="retail"    company="acme">;
        node d2 <department name="wholesale" company="acme">;
        node d3 <department name="exports"   company="acme">;
        node d4 <department name="sales"     company="globex">;
        node d5 <department name="support"   company="globex">;
        node s1 <shipper name="fastship">;
        node s2 <shipper name="slowboat">;
        edge e1 (d1, s1) <rel="shipping">;
        edge e2 (d2, s1) <rel="shipping">;
        edge e3 (d3, s2) <rel="shipping">;
        edge e4 (d4, s2) <rel="shipping">;
        edge e5 (d5, s2) <rel="shipping">;
        edge e6 (d1, d2) <rel="reports_to">;
      }|}

let () =
  let g = rdf_graph () in
  Format.printf "RDF graph: %d nodes, %d edges@.@." (Graph.n_nodes g)
    (Graph.n_edges g);

  (* the three-node, two-edge query: two departments of the same
     company connected to one shared shipper by "shipping" edges;
     report the result as a single accumulated graph, exactly as the
     intro asks, by folding matches through a let-template *)
  let query =
    {|graph P {
        node a <department>;
        node b <department>;
        node s <shipper>;
        edge e1 (a, s) where rel="shipping";
        edge e2 (b, s) where rel="shipping";
      } where P.a.company = P.b.company & P.a.name < P.b.name;
      R := graph {};
      for P exhaustive in doc("rdf")
      let R := graph {
        graph R;
        node P.a, P.b;
        edge share (P.a, P.b);
        unify P.a, R.x where P.a.name=R.x.name;
        unify P.b, R.y where P.b.name=R.y.name;
      }|}
  in
  let result = Gql.run_query ~docs:[ ("rdf", [ g ]) ] query in
  match Eval.var result "R" with
  | None -> failwith "no result graph"
  | Some r ->
    Format.printf "Departments sharing a shipper (single result graph):@.";
    Format.printf "  %d departments, %d shared-shipper edges@." (Graph.n_nodes r)
      (Graph.n_edges r);
    Graph.iter_edges r ~f:(fun _ e ->
        let name v = Value.to_string (Tuple.get (Graph.node_tuple r v) "name") in
        Format.printf "  %s -- %s@." (name e.Graph.src) (name e.Graph.dst))
