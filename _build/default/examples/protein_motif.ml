(* Protein-motif search over the (synthetic) yeast interaction network:
   the §5.1 setting. Compares the paper's access-method configurations
   on clique motifs and demonstrates predicates over protein attributes.

   Run with:  dune exec examples/protein_motif.exe
*)

open Gql_graph
module Engine = Gql_matcher.Engine
module FP = Gql_matcher.Flat_pattern
open Gql_datasets

let () =
  let g = Ppi.generate () in
  let lidx = Gql_index.Label_index.build g in
  let pidx = Gql_index.Profile_index.build ~r:1 g in
  Format.printf "Yeast PPI surrogate: %d proteins, %d interactions, %d GO terms@."
    (Graph.n_nodes g) (Graph.n_edges g)
    (Gql_index.Label_index.distinct_labels lidx);

  (* a functional triangle: three mutually interacting proteins with
     given GO terms *)
  let labels = Queries.top_labels lidx 3 in
  (match labels with
  | [ l1; l2; l3 ] ->
    let motif = FP.clique [ l1; l2; l3 ] in
    let strategies =
      [ ("Baseline ", Engine.baseline); ("Optimized", Engine.optimized) ]
    in
    Format.printf "@.Triangle motif <%s, %s, %s>:@." l1 l2 l3;
    List.iter
      (fun (name, strategy) ->
        let r =
          Engine.run ~strategy ~limit:1000 ~label_index:lidx ~profile_index:pidx
            motif g
        in
        Format.printf "  %s: %d matches in %.2f ms@." name
          r.Engine.outcome.Gql_matcher.Search.n_found
          (1000.0 *. Engine.total r.Engine.timings))
      strategies
  | _ -> ());

  (* a star motif: a hub protein of one function touching four partners
     of another *)
  (match Queries.top_labels lidx 2 with
  | [ hub; partner ] ->
    let star = FP.star ~center:hub [ partner; partner; partner; partner ] in
    let n = Engine.count_matches ~limit:1000 star g in
    Format.printf "@.Star motif (hub %s with four %s partners): %d matches@." hub
      partner n
  | _ -> ());

  (* GraphQL surface syntax with an attribute predicate: interacting
     proteins from a specific ORF window *)
  let matches =
    Gql_core.Gql.find_matches
      ~pattern:
        {|graph P {
            node p1 <protein>;
            node p2 <protein>;
            edge e (p1, p2);
          } where p1.orf < "Y0100" & p2.orf < "Y0100"|}
      g
  in
  Format.printf
    "@.Interactions within the first hundred ORFs (both orientations): %d@."
    (List.length matches)
