(* Cheminformatics (first motivating example of the paper's intro):
   "Find all heterocyclic chemical compounds that contain a given
   aromatic ring and a side chain. Both the ring and the side chain are
   specified as graphs with atoms as nodes and bonds as edges."

   The query pattern is built with the motif language: a 5-ring motif
   with one non-carbon member (heterocycle) concatenated with a 2-atom
   side chain. Run with:  dune exec examples/chemistry.exe
*)

open Gql_core
open Gql_graph
module Algebra = Gql_core.Algebra

let () =
  let compounds = Gql_datasets.Chem.generate ~n_compounds:600 () in
  Format.printf "Screening %d generated compounds@." (List.length compounds);

  (* the heterocyclic 5-ring: four carbons and one nitrogen, as a named
     motif; the full query concatenates a side chain onto the ring *)
  let ring_decl =
    Gql.parse_graph_decl
      {|graph Ring {
          node a1 where label="C";
          node a2 where label="C";
          node a3 where label="C";
          node a4 where label="C";
          node het where label="N";
          edge b1 (a1, a2); edge b2 (a2, a3); edge b3 (a3, a4);
          edge b4 (a4, het); edge b5 (het, a1);
        }|}
  in
  let query_decl =
    Gql.parse_graph_decl
      {|graph P {
          graph Ring as R;
          node c1;
          node c2;
          edge s1 (R.a1, c1);
          edge s2 (c1, c2);
        }|}
  in
  let defs = Motif.defs_of_list [ ("Ring", ring_decl) ] in
  let patterns =
    List.of_seq (Motif.flat_patterns ~defs query_decl)
  in
  let collection = List.map (fun c -> Algebra.G c) compounds in
  let hits =
    Algebra.select ~exhaustive:false ~patterns collection
  in
  Format.printf
    "Compounds containing an N-heterocyclic 5-ring with a 2-atom side chain: %d@."
    (List.length hits);

  (* double bonds only: an edge predicate over the bond order *)
  let double_bonded =
    Algebra.select ~exhaustive:false
      ~patterns:
        [
          Gql.pattern_of_string
            {|graph D {
                node x; node y;
                edge b (x, y) where bond == 2;
              }|};
        ]
      collection
  in
  Format.printf "Compounds with at least one double bond: %d@."
    (List.length double_bonded);

  (* report the heterocycle hits as a result collection of new graphs:
     compound summaries built by composition *)
  let template =
    Gql.parse_graph_decl
      {|graph {
          node summary <heterocycle ring_atom=P.R.het.label chain_end=P.c2.label>;
        }|}
  in
  let summaries = Algebra.compose ~template ~param:"P" hits in
  let tags = Hashtbl.create 8 in
  List.iter
    (fun entry ->
      let g = Algebra.underlying entry in
      let t = Graph.node_tuple g 0 in
      let key = Value.to_string (Tuple.get t "chain_end") in
      Hashtbl.replace tags key (1 + Option.value (Hashtbl.find_opt tags key) ~default:0))
    summaries;
  Format.printf "Side-chain terminal atoms among hits:@.";
  Hashtbl.iter (fun k n -> Format.printf "  %s: %d@." k n) tags
