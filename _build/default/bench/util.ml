(* shared helpers for the experiment harness *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let ms s = s *. 1000.0

let header fmt =
  Printf.ksprintf
    (fun s ->
      print_string ("\n=== " ^ s ^ " ===\n");
      flush stdout)
    fmt

let row fmt =
  Printf.ksprintf
    (fun s ->
      print_string s;
      flush stdout)
    fmt

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

