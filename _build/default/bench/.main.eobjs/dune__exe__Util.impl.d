bench/util.ml: List Printf Unix
