bench/main.mli:
