#!/usr/bin/env python3
"""CI perf-regression gate.

Compares a freshly measured bench JSON (schema gql-bench/v1, produced by
`dune exec bench/main.exe -- <experiments> --json FILE`) against the most
recent committed BENCH_PR*.json snapshot and fails on large slowdowns.

Design choices, deliberately conservative for shared CI runners:

- Only timing leaves present in BOTH files are compared, matched by
  their JSON path. New experiments pass freely (the snapshot catches up
  when it is regenerated), and removed ones are ignored.
- Only leaves whose key ends in `_ms` or `_ns`, or that live under the
  `micro.bechamel_ns` experiment, count as timings. Ratios, counts and
  speedup factors are not gated here. Latency-percentile cells
  (`*_p50_ms` / `*_p95_ms` / `*_p99_ms`, from the serve load harness)
  are timings too, compared path-matched like the rest.
- Baseline values below a noise floor are skipped: sub-millisecond
  timers on a noisy VM produce meaningless ratios. The floor is 0.5 ms
  / 500 ns for plain timings and 1.0 ms for percentile cells — tail
  percentiles of a multi-client run carry scheduler jitter on top of
  timer noise.
- The threshold is loose (3x) on purpose: this gate catches
  order-of-magnitude regressions (an accidentally quadratic loop, a
  dropped index), not 10% drift.

Exit status: 0 when every compared timing is within threshold, 1
otherwise, 2 on usage/schema errors.
"""

import argparse
import glob
import json
import os
import re
import sys


def find_baseline(repo_root):
    """The committed BENCH_PR<N>.json with the highest N."""
    best, best_n = None, -1
    for path in glob.glob(os.path.join(repo_root, "BENCH_PR*.json")):
        m = re.search(r"BENCH_PR(\d+)\.json$", path)
        if m and int(m.group(1)) > best_n:
            best, best_n = path, int(m.group(1))
    return best


def flatten(node, path=()):
    """Yield (path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for k, v in node.items():
            yield from flatten(v, path + (str(k),))
    elif isinstance(node, list):
        for i, v in enumerate(node):
            # Benchmark rows are keyed by a "size" field when present,
            # so path identity survives a row being added in the middle.
            key = str(i)
            if isinstance(v, dict) and "size" in v:
                key = "size=%s" % v["size"]
            yield from flatten(v, path + (key,))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def is_timing(path):
    leaf = path[-1]
    return (
        leaf.endswith("_ms")
        or leaf.endswith("_ns")
        or (len(path) >= 1 and path[0] == "micro.bechamel_ns")
    )


PERCENTILE_RE = re.compile(r"_p\d+_ms$")


def is_percentile(path):
    return bool(PERCENTILE_RE.search(path[-1]))


def noise_floor(path):
    if is_percentile(path):
        return 1.0
    return 500.0 if (path[-1].endswith("_ns") or path[0] == "micro.bechamel_ns") else 0.5


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True, help="bench JSON measured in this run")
    ap.add_argument("--baseline", help="snapshot to compare against "
                    "(default: latest committed BENCH_PR*.json)")
    ap.add_argument("--threshold", type=float, default=3.0,
                    help="fail when current/baseline exceeds this (default 3.0)")
    ap.add_argument("--repo-root", default=".", help="where BENCH_PR*.json live")
    args = ap.parse_args()

    baseline_path = args.baseline or find_baseline(args.repo_root)
    if baseline_path is None:
        print("perf-gate: no BENCH_PR*.json baseline found; nothing to compare")
        return 0

    try:
        current = json.load(open(args.current))
        baseline = json.load(open(baseline_path))
    except (OSError, ValueError) as e:
        print("perf-gate: cannot load inputs: %s" % e, file=sys.stderr)
        return 2

    for doc, name in ((current, args.current), (baseline, baseline_path)):
        if doc.get("schema") != "gql-bench/v1":
            print("perf-gate: %s is not gql-bench/v1 (schema=%r)"
                  % (name, doc.get("schema")), file=sys.stderr)
            return 2
    if current.get("mode") != baseline.get("mode"):
        print("perf-gate: mode mismatch (current=%r baseline=%r); "
              "ratios would be meaningless" % (current.get("mode"),
                                               baseline.get("mode")),
              file=sys.stderr)
        return 2

    cur = dict(flatten(current.get("experiments", {})))
    base = dict(flatten(baseline.get("experiments", {})))

    compared, skipped, failures = 0, 0, []
    print("perf-gate: baseline %s, threshold %.1fx" % (baseline_path, args.threshold))
    for path in sorted(set(cur) & set(base)):
        if not is_timing(path):
            continue
        b, c = base[path], cur[path]
        if b < noise_floor(path):
            skipped += 1
            continue
        compared += 1
        ratio = c / b if b > 0 else float("inf")
        marker = ""
        if ratio > args.threshold:
            failures.append((path, b, c, ratio))
            marker = "  <-- REGRESSION"
        print("  %-70s %10.2f -> %10.2f  (%5.2fx)%s"
              % ("/".join(path), b, c, ratio, marker))

    print("perf-gate: %d timings compared, %d below noise floor, %d regressions"
          % (compared, skipped, len(failures)))
    if failures:
        for path, b, c, ratio in failures:
            print("FAIL %s: %.2f -> %.2f (%.2fx > %.1fx)"
                  % ("/".join(path), b, c, ratio, args.threshold), file=sys.stderr)
        return 1
    if compared == 0:
        print("perf-gate: warning: no comparable timings (experiment sets disjoint?)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
