(* Experiment harness: regenerates every figure of the paper's Section 5.
   Run all experiments with `dune exec bench/main.exe`, or one of
   fig4.20 fig4.21 fig4.22 fig4.23 ablation micro, optionally with
   --full for paper-scale query counts. *)

open Gql_graph
module FP = Gql_matcher.Flat_pattern
module Feasible = Gql_matcher.Feasible
module Refine = Gql_matcher.Refine
module Order = Gql_matcher.Order
module Search = Gql_matcher.Search
module Engine = Gql_matcher.Engine
module Cost = Gql_matcher.Cost
open Gql_datasets
open Util

let full_mode = ref false
let hit_limit = 1000  (* §5.1: queries with more than 1000 hits terminate *)

let scale quick full = if !full_mode then full else quick

(* ---------------------------------------------------------------------- *)
(* per-query measurements shared by Figures 4.20-4.23                      *)

type obs = {
  o_answers : int;
  o_high_hits : bool;
  (* log10 reduction ratios w.r.t. the attrs-only space *)
  r_profiles : float;
  r_subgraphs : float;
  r_refined : float;
  (* per-step seconds *)
  t_profiles : float;
  t_subgraphs : float;
  t_refine : float;
  t_order : float;
  t_search_opt : float;
  t_search_noopt : float;
  t_retrieve_base : float;
  t_search_baseline : float;
}

let observe ?(with_subgraphs = true) ~lidx ~pidx pattern g =
  let base, t_retrieve_base =
    time (fun () -> Feasible.compute ~retrieval:`Node_attrs ~label_index:lidx pattern g)
  in
  let prof, t_profiles =
    time (fun () ->
        Feasible.compute ~retrieval:`Profiles ~label_index:lidx ~profile_index:pidx
          pattern g)
  in
  (* subgraph retrieval is only reported by Figures 4.20-4.22; it is
     expensive on frequent labels over large graphs, so callers that do
     not plot it skip it *)
  let subg, t_subgraphs =
    if with_subgraphs then
      time (fun () ->
          Feasible.compute ~retrieval:`Subgraphs ~label_index:lidx
            ~profile_index:pidx pattern g)
    else (prof, nan)
  in
  let (refined, _), t_refine = time (fun () -> Refine.refine pattern g prof) in
  let order, t_order =
    time (fun () -> Order.greedy pattern ~sizes:(Feasible.sizes refined))
  in
  let out_opt, t_search_opt =
    time (fun () -> Search.run ~limit:hit_limit ~order pattern g refined)
  in
  let _, t_search_noopt =
    time (fun () -> Search.run ~limit:hit_limit pattern g refined)
  in
  let _, t_search_baseline =
    time (fun () -> Search.run ~limit:hit_limit pattern g base)
  in
  let log_base = Feasible.log10_size base in
  let ratio space = Feasible.log10_size space -. log_base in
  let n = out_opt.Search.n_found in
  if n = 0 then None  (* "queries having no answers are not counted" *)
  else
    Some
      {
        o_answers = n;
        o_high_hits = n >= 100;
        r_profiles = ratio prof;
        r_subgraphs = ratio subg;
        r_refined = ratio refined;
        t_profiles;
        t_subgraphs;
        t_refine;
        t_order;
        t_search_opt;
        t_search_noopt;
        t_retrieve_base;
        t_search_baseline;
      }

let split_hits obs =
  ( List.filter (fun o -> not o.o_high_hits) obs,
    List.filter (fun o -> o.o_high_hits) obs )

let t_optimized o = o.t_profiles +. o.t_refine +. o.t_order +. o.t_search_opt
let t_baseline o = o.t_retrieve_base +. o.t_search_baseline

(* JSON summary of one observation group (a figure cell): reduction
   ratios plus per-step timings, mirroring the printed tables *)
let obs_summary obs =
  let m f = mean (List.map f obs) in
  Json.Obj
    [
      ("queries", Json.Int (List.length obs));
      ("answers_mean", Json.Float (m (fun o -> float_of_int o.o_answers)));
      ("r_profiles", Json.Float (m (fun o -> o.r_profiles)));
      ("r_subgraphs", Json.Float (m (fun o -> o.r_subgraphs)));
      ("r_refined", Json.Float (m (fun o -> o.r_refined)));
      ("t_profiles_ms", Json.Float (ms (m (fun o -> o.t_profiles))));
      ("t_subgraphs_ms", Json.Float (ms (m (fun o -> o.t_subgraphs))));
      ("t_refine_ms", Json.Float (ms (m (fun o -> o.t_refine))));
      ("t_order_ms", Json.Float (ms (m (fun o -> o.t_order))));
      ("t_search_opt_ms", Json.Float (ms (m (fun o -> o.t_search_opt))));
      ("t_search_noopt_ms", Json.Float (ms (m (fun o -> o.t_search_noopt))));
      ("t_optimized_ms", Json.Float (ms (m t_optimized)));
      ("t_baseline_ms", Json.Float (ms (m t_baseline)));
    ]

let emit_observations name per_size =
  emit_json name
    (Json.List
       (List.filter_map
          (fun (size, obs) ->
            if obs = [] then None
            else
              Some
                (Json.Obj
                   [ ("size", Json.Int size); ("summary", obs_summary obs) ]))
          per_size))

(* ---------------------------------------------------------------------- *)
(* PPI clique workload (Figures 4.20 and 4.21)                             *)

let ppi_env =
  lazy
    (let g = Ppi.generate () in
     let lidx = Gql_index.Label_index.build g in
     let pidx = Gql_index.Profile_index.build ~r:1 g in
     (g, lidx, pidx))

let ppi_observations =
  lazy
    (let g, lidx, pidx = Lazy.force ppi_env in
     let labels = Queries.top_labels lidx 40 in
     let weights = Queries.label_weights lidx labels in
     let rng = Rng.create 20080612 in
     let n_queries = scale 150 1000 in
     List.map
       (fun size ->
         let obs = ref [] in
         for _ = 1 to n_queries do
           let q = Queries.clique ~weights rng ~labels ~size in
           match observe ~lidx ~pidx q g with
           | Some o -> obs := o :: !obs
           | None -> ()
         done;
         (size, List.rev !obs))
       [ 2; 3; 4; 5; 6; 7 ])

let fig_4_20 () =
  let observations = Lazy.force ppi_observations in
  let print_group sub name pick =
    header "Figure 4.20%s: search-space reduction ratio, clique queries (%s)" sub name;
    row "%-6s %10s %12s %12s %12s %10s\n" "size" "queries" "profiles" "subgraphs"
      "refined" "answers";
    List.iter
      (fun (size, obs) ->
        let group = pick obs in
        if group <> [] then begin
          let m f = mean (List.map f group) in
          row "%-6d %10d %12.2f %12.2f %12.2f %10.0f\n" size (List.length group)
            (m (fun o -> o.r_profiles))
            (m (fun o -> o.r_subgraphs))
            (m (fun o -> o.r_refined))
            (m (fun o -> float_of_int o.o_answers))
        end)
      observations;
    row
      "(mean log10 of |space|/|attrs-only space|; more negative = stronger pruning)\n"
  in
  print_group "(a)" "low hits" (fun obs -> fst (split_hits obs));
  print_group "(b)" "high hits" (fun obs -> snd (split_hits obs));
  emit_observations "fig4.20.low_hits"
    (List.map (fun (s, obs) -> (s, fst (split_hits obs))) observations);
  emit_observations "fig4.20.high_hits"
    (List.map (fun (s, obs) -> (s, snd (split_hits obs))) observations)

let sql_time_per_query ~db pattern =
  let _, t =
    time (fun () ->
        Gql_sqlsim.Graphplan.count_matches ~limit:hit_limit ~timeout:2.0 db pattern)
  in
  t

let fig_4_21 () =
  let g, lidx, _pidx = Lazy.force ppi_env in
  let observations = Lazy.force ppi_observations in
  header "Figure 4.21(a): time of individual steps, clique queries, low hits (ms)";
  row "%-6s %10s %12s %10s %12s %14s\n" "size" "profiles" "subgraphs" "refine"
    "search-opt" "search-no-opt";
  List.iter
    (fun (size, obs) ->
      let low, _ = split_hits obs in
      if low <> [] then begin
        let m f = ms (mean (List.map f low)) in
        row "%-6d %10.3f %12.3f %10.3f %12.3f %14.3f\n" size
          (m (fun o -> o.t_profiles))
          (m (fun o -> o.t_subgraphs))
          (m (fun o -> o.t_refine))
          (m (fun o -> o.t_search_opt))
          (m (fun o -> o.t_search_noopt))
      end)
    observations;
  header "Figure 4.21(b): total query processing time, low hits (ms)";
  row "%-6s %12s %12s %12s\n" "size" "Optimized" "Baseline" "SQL-based";
  let db = Gql_sqlsim.Graphplan.db_of_graph g in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  let rng = Rng.create 31415 in
  let sql_queries_per_size = scale 10 50 in
  let json_rows = ref [] in
  List.iter
    (fun (size, obs) ->
      let low, _ = split_hits obs in
      if low <> [] then begin
        let m f = ms (mean (List.map f low)) in
        let sql_times = ref [] in
        let tries = ref 0 in
        while
          List.length !sql_times < sql_queries_per_size
          && !tries < 20 * sql_queries_per_size
        do
          incr tries;
          let q = Queries.clique ~weights rng ~labels ~size in
          if Engine.count_matches ~limit:1 q g > 0 then
            sql_times := sql_time_per_query ~db q :: !sql_times
        done;
        row "%-6d %12.3f %12.3f %12.3f\n" size (m t_optimized) (m t_baseline)
          (ms (mean !sql_times));
        json_rows :=
          Json.Obj
            [
              ("size", Json.Int size);
              ("t_optimized_ms", Json.Float (m t_optimized));
              ("t_baseline_ms", Json.Float (m t_baseline));
              ("t_sql_ms", Json.Float (ms (mean !sql_times)));
            ]
          :: !json_rows
      end)
    observations;
  emit_json "fig4.21.totals" (Json.List (List.rev !json_rows));
  row
    "(SQL-based: Figure 4.2 plan on V/E tables with B-tree indexes, limit %d, 2 s timeout)\n"
    hit_limit

(* ---------------------------------------------------------------------- *)
(* synthetic-graph experiments (Figures 4.22 and 4.23)                     *)

let synthetic_env n =
  let rng = Rng.create (97 + n) in
  let g = Synthetic.erdos_renyi rng ~n ~m:(5 * n) in
  let lidx = Gql_index.Label_index.build g in
  let pidx = Gql_index.Profile_index.build ~r:1 g in
  (g, lidx, pidx)

let synthetic_10k = lazy (synthetic_env 10_000)

let synthetic_observations =
  lazy
    (let g, lidx, pidx = Lazy.force synthetic_10k in
     let rng = Rng.create 271828 in
     let n_queries = scale 30 100 in
     List.map
       (fun size ->
         let obs = ref [] in
         for _ = 1 to n_queries do
           let q = Queries.connected_subgraph rng g ~size in
           match observe ~lidx ~pidx q g with
           | Some o -> obs := o :: !obs
           | None -> ()
         done;
         (size, List.rev !obs))
       [ 4; 8; 12; 16; 20 ])

let fig_4_22 () =
  let observations = Lazy.force synthetic_observations in
  header "Figure 4.22(a): search-space reduction, synthetic graph 10K nodes (low hits)";
  row "%-6s %10s %12s %12s %12s\n" "size" "queries" "profiles" "subgraphs" "refined";
  List.iter
    (fun (size, obs) ->
      let low, _ = split_hits obs in
      if low <> [] then begin
        let m f = mean (List.map f low) in
        row "%-6d %10d %12.2f %12.2f %12.2f\n" size (List.length low)
          (m (fun o -> o.r_profiles))
          (m (fun o -> o.r_subgraphs))
          (m (fun o -> o.r_refined))
      end)
    observations;
  header "Figure 4.22(b): time for individual steps, synthetic graph (ms)";
  row "%-6s %10s %12s %10s %12s %14s\n" "size" "profiles" "subgraphs" "refine"
    "search-opt" "search-no-opt";
  List.iter
    (fun (size, obs) ->
      let low, _ = split_hits obs in
      if low <> [] then begin
        let m f = ms (mean (List.map f low)) in
        row "%-6d %10.3f %12.3f %10.3f %12.3f %14.3f\n" size
          (m (fun o -> o.t_profiles))
          (m (fun o -> o.t_subgraphs))
          (m (fun o -> o.t_refine))
          (m (fun o -> o.t_search_opt))
          (m (fun o -> o.t_search_noopt))
      end)
    observations;
  emit_observations "fig4.22.low_hits"
    (List.map (fun (s, obs) -> (s, fst (split_hits obs))) observations)

let fig_4_23 () =
  let g, _, _ = Lazy.force synthetic_10k in
  let observations = Lazy.force synthetic_observations in
  header "Figure 4.23(a): total time vs query size, 10K nodes (ms)";
  row "%-6s %12s %12s %12s\n" "size" "Optimized" "Baseline" "SQL-based";
  let db = Gql_sqlsim.Graphplan.db_of_graph g in
  let rng = Rng.create 1618 in
  let sql_queries = scale 5 20 in
  List.iter
    (fun (size, obs) ->
      let low, _ = split_hits obs in
      if low <> [] then begin
        let m f = ms (mean (List.map f low)) in
        let sql_times =
          List.init sql_queries (fun _ ->
              sql_time_per_query ~db (Queries.connected_subgraph rng g ~size))
        in
        row "%-6d %12.3f %12.3f %12.3f\n" size (m t_optimized) (m t_baseline)
          (ms (mean sql_times))
      end)
    observations;
  header "Figure 4.23(b): total time vs graph size, query size 4 (ms)";
  row "%-10s %12s %12s %12s\n" "nodes" "Optimized" "Baseline" "SQL-based";
  let json_rows = ref [] in
  List.iter
    (fun n ->
      let g, lidx, pidx = synthetic_env n in
      let rng = Rng.create (n + 5) in
      let n_queries = scale 15 50 in
      let obs = ref [] in
      let attempts = ref 0 in
      while List.length !obs < n_queries && !attempts < 5 * n_queries do
        incr attempts;
        let q = Queries.connected_subgraph rng g ~size:4 in
        match observe ~with_subgraphs:false ~lidx ~pidx q g with
        | Some o -> obs := o :: !obs
        | None -> ()
      done;
      let m f = ms (mean (List.map f !obs)) in
      let db = Gql_sqlsim.Graphplan.db_of_graph g in
      let sql_queries = scale 5 20 in
      let sql_times =
        List.init sql_queries (fun _ ->
            sql_time_per_query ~db (Queries.connected_subgraph rng g ~size:4))
      in
      row "%-10d %12.3f %12.3f %12.3f\n" n (m t_optimized) (m t_baseline)
        (ms (mean sql_times));
      json_rows :=
        Json.Obj
          [
            ("nodes", Json.Int n);
            ("t_optimized_ms", Json.Float (m t_optimized));
            ("t_baseline_ms", Json.Float (m t_baseline));
            ("t_sql_ms", Json.Float (ms (mean sql_times)));
          ]
        :: !json_rows)
    [ 10_000; 20_000; 40_000; 80_000; 160_000; 320_000 ];
  emit_json "fig4.23.graph_size" (Json.List (List.rev !json_rows))

(* ---------------------------------------------------------------------- *)
(* ablation: contribution of each §4 technique                             *)

let ablation () =
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  let strategies =
    [
      ("baseline (attrs, input order)", Engine.baseline);
      ("attrs + refine", { Engine.baseline with refine = true });
      ("profiles only", { Engine.baseline with retrieval = `Profiles });
      ( "profiles + refine",
        { Engine.baseline with retrieval = `Profiles; refine = true } );
      ("profiles + refine + order (Optimized)", Engine.optimized);
      ("optimized w/o refine", { Engine.optimized with refine = false });
      ("optimized w/o order", { Engine.optimized with optimize_order = false });
      ("subgraphs + refine + order", { Engine.optimized with retrieval = `Subgraphs });
      ( "optimized + frequency cost model",
        {
          Engine.optimized with
          cost_model = Some (Cost.Frequencies (Cost.stats_of_graph g));
        } );
    ]
  in
  header "Ablation: mean total query time on PPI clique queries (ms)";
  row "%-42s %10s %10s %10s\n" "strategy" "size 4" "size 5" "size 6";
  let n_queries = scale 40 200 in
  let json_rows = ref [] in
  List.iter
    (fun (name, s) ->
      let cell size =
        let rng = Rng.create (555 + size) in
        let times = ref [] in
        for _ = 1 to n_queries do
          let q = Queries.clique ~weights rng ~labels ~size in
          let r =
            Engine.run ~strategy:s ~limit:hit_limit ~label_index:lidx
              ~profile_index:pidx q g
          in
          if r.Engine.outcome.Search.n_found > 0 then
            times := Engine.total r.Engine.timings :: !times
        done;
        ms (mean !times)
      in
      let c4 = cell 4 and c5 = cell 5 and c6 = cell 6 in
      row "%-42s %10.3f %10.3f %10.3f\n" name c4 c5 c6;
      json_rows :=
        Json.Obj
          [
            ("strategy", Json.Str name);
            ("size4_ms", Json.Float c4);
            ("size5_ms", Json.Float c5);
            ("size6_ms", Json.Float c6);
          ]
        :: !json_rows)
    strategies;
  emit_json "ablation.strategies" (Json.List (List.rev !json_rows));
  header "Ablation: Algorithm 4.2 worklist vs naive refinement (clique size 5)";
  row "%-12s %16s %14s %12s\n" "variant" "matchings" "removed" "time (ms)";
  let rng = Rng.create 777 in
  let n = scale 30 150 in
  let acc_w = ref [] and acc_n = ref [] in
  for _ = 1 to n do
    let q = Queries.clique ~weights rng ~labels ~size:5 in
    let space =
      Feasible.compute ~retrieval:`Profiles ~label_index:lidx ~profile_index:pidx q g
    in
    let (_, st1), t1 = time (fun () -> Refine.refine q g space) in
    let (_, st2), t2 = time (fun () -> Refine.refine_naive q g space) in
    acc_w := (st1, t1) :: !acc_w;
    acc_n := (st2, t2) :: !acc_n
  done;
  let report name acc =
    let checks = mean (List.map (fun (s, _) -> float_of_int s.Refine.pairs_checked) acc) in
    let removed = mean (List.map (fun (s, _) -> float_of_int s.Refine.removed) acc) in
    let t = ms (mean (List.map snd acc)) in
    row "%-12s %16.1f %14.1f %12.3f\n" name checks removed t
  in
  report "worklist" !acc_w;
  report "naive" !acc_n

(* ---------------------------------------------------------------------- *)
(* extensions: collection filtering, parallel search, disk storage         *)

let collection () =
  (* §4 category 1: a large collection of small graphs — index-filtered
     matching vs scanning every graph *)
  let n_compounds = scale 1500 5000 in
  let compounds = Array.of_list (Chem.generate ~n_compounds ()) in
  header "Collection of %d compounds: path-index filtering vs full scan" n_compounds;
  let idx, t_build = time (fun () -> Gql_index.Path_index.build ~max_len:3 compounds) in
  row "index: %d features over %d graphs, built in %.2f s\n"
    (Gql_index.Path_index.n_features idx)
    (Gql_index.Path_index.n_graphs idx)
    t_build;
  let patterns =
    [
      ("benzene ring", Chem.benzene_like ());
      ("C-N edge", Graph.of_labeled ~labels:[| "C"; "N" |] [ (0, 1) ]);
      ("S-C-S path", Graph.of_labeled ~labels:[| "S"; "C"; "S" |] [ (0, 1); (1, 2) ]);
      ( "N ring of 5",
        Graph.of_labeled
          ~labels:[| "N"; "N"; "N"; "N"; "N" |]
          [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] );
    ]
  in
  row "%-14s %10s %12s %12s %12s %10s\n" "pattern" "answers" "candidates"
    "scan (ms)" "filter (ms)" "speedup";
  List.iter
    (fun (name, pg) ->
      let p = FP.of_graph pg in
      let contains g = Engine.count_matches ~limit:1 p g > 0 in
      let scan_count, t_scan =
        time (fun () ->
            Array.fold_left (fun n g -> if contains g then n + 1 else n) 0 compounds)
      in
      let (cands, filtered_count), t_filtered =
        time (fun () ->
            let cands = Gql_index.Path_index.candidates idx pg in
            ( cands,
              List.fold_left
                (fun n id -> if contains compounds.(id) then n + 1 else n)
                0 cands ))
      in
      assert (scan_count = filtered_count);
      row "%-14s %10d %12d %12.2f %12.2f %9.1fx\n" name scan_count
        (List.length cands) (ms t_scan) (ms t_filtered)
        (t_scan /. t_filtered))
    patterns

(* Two workloads, two engines.  Balanced: PPI clique queries whose
   Φ(u₁) candidates carry comparable subtrees — static slicing is
   already fine there, and the work-stealing engine must not regress
   it.  Skewed: a synthetic hub graph where a single Φ(u₁) candidate
   owns every match, the adversarial case for static slicing (one
   domain inherits the whole search while the rest idle); stealing
   redistributes the hub's subtrees.  Both engines must agree on
   [n_found]; the WS steal/spawn counters are emitted so the JSON shows
   the protocol actually engaged (on a single-core runner the
   wall-clock columns are about overhead, not speedup). *)
let parallel () =
  header "Parallel search: work-stealing vs static slicing";
  let module Par = Gql_matcher.Parallel in
  let module Ws = Gql_matcher.Ws in
  let module M = Gql_obs.Metrics in
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  row "balanced workload: PPI clique queries, profile-pruned spaces\n";
  row "%-8s %12s %12s %12s %12s\n" "size" "ws x1" "ws x2" "ws x4" "static x4";
  List.iter
    (fun size ->
      let rng = Rng.create (9000 + size) in
      let n_queries = scale 30 150 in
      let qs =
        List.init n_queries (fun _ -> Queries.clique ~weights rng ~labels ~size)
      in
      (* search phase only, over the profile-pruned space *)
      let spaces =
        List.map
          (fun q ->
            ( q,
              Gql_matcher.Feasible.compute ~retrieval:`Profiles ~label_index:lidx
                ~profile_index:pidx q g ))
          qs
      in
      let cell engine domains =
        let _, t =
          time (fun () ->
              List.iter
                (fun (q, space) -> ignore (engine ~domains q g space))
                spaces)
        in
        ms t /. float_of_int n_queries
      in
      let ws d = cell (fun ~domains q g s -> Par.search ~domains q g s) d in
      let st d = cell (fun ~domains q g s -> Par.search_static ~domains q g s) d in
      let c1 = ws 1 and c2 = ws 2 and c4 = ws 4 and s4 = st 4 in
      row "%-8d %12.3f %12.3f %12.3f %12.3f\n" size c1 c2 c4 s4;
      emit_json
        (Printf.sprintf "parallel.balanced.size%d" size)
        (Json.Obj
           [
             ("ws1_ms", Json.Float c1);
             ("ws2_ms", Json.Float c2);
             ("ws4_ms", Json.Float c4);
             ("static4_ms", Json.Float s4);
           ]))
    [ 4; 5; 6 ];
  (* skewed workload: 64 candidates for u₁, one hub adjacent to a
     24-node community (4-clique pattern → every match runs through the
     hub), the other 63 are immediate dead ends *)
  let hub_g =
    let b = Graph.Builder.create () in
    let hs = Array.init 64 (fun _ -> Graph.Builder.add_labeled_node b "H") in
    let bs = Array.init 24 (fun _ -> Graph.Builder.add_labeled_node b "B") in
    Array.iter (fun v -> ignore (Graph.Builder.add_edge b hs.(0) v)) bs;
    Array.iteri
      (fun i u ->
        for j = i + 1 to Array.length bs - 1 do
          ignore (Graph.Builder.add_edge b u bs.(j))
        done)
      bs;
    Graph.Builder.build b
  in
  let hub_p = FP.clique [ "H"; "B"; "B"; "B" ] in
  let hub_space = Feasible.compute ~retrieval:`Node_attrs hub_p hub_g in
  let reps = scale 10 30 in
  let expected = (Search.run hub_p hub_g hub_space).Search.n_found in
  let skew_cell engine domains =
    let check (out : Search.outcome) =
      if out.Search.n_found <> expected then begin
        Printf.eprintf "FAIL: skewed run found %d matches, expected %d\n"
          out.Search.n_found expected;
        exit 1
      end
    in
    check (engine ~domains hub_p hub_g hub_space);
    let _, t =
      time (fun () ->
          for _ = 1 to reps do
            ignore (engine ~domains hub_p hub_g hub_space)
          done)
    in
    ms t /. float_of_int reps
  in
  let ws_cell d = skew_cell (fun ~domains p g s -> Par.search ~domains p g s) d in
  let st_cell d =
    skew_cell (fun ~domains p g s -> Par.search_static ~domains p g s) d
  in
  let s1 = st_cell 1 and s2 = st_cell 2 and s4 = st_cell 4 in
  let w1 = ws_cell 1 and w2 = ws_cell 2 and w4 = ws_cell 4 in
  (* counters from one instrumented 4-domain WS run: nonzero spawn and
     steal counts are the proof the skewed search was redistributed *)
  let metrics = M.create () in
  ignore (Ws.search ~domains:4 ~metrics hub_p hub_g hub_space);
  let steals = M.get metrics M.Parallel_steals in
  let spawned = M.get metrics M.Parallel_tasks_spawned in
  let idle = M.get metrics M.Parallel_idle_polls in
  row "skewed workload: hub graph, %d matches, all through Φ(u1)[0]\n" expected;
  row "%-8s %12s %12s %12s\n" "engine" "x1" "x2" "x4";
  row "%-8s %12.3f %12.3f %12.3f\n" "static" s1 s2 s4;
  row "%-8s %12.3f %12.3f %12.3f\n" "ws" w1 w2 w4;
  row "ws x4 counters: %d task(s) spawned, %d steal(s), %d idle poll(s)\n"
    spawned steals idle;
  if spawned = 0 then begin
    Printf.eprintf "FAIL: work-stealing run spawned no subtree tasks\n";
    exit 1
  end;
  emit_json "parallel.skewed"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "hub graph: |Φ(u1)| = 64, one hub owns every 4-clique match \
              (24-node community); static slicing strands the search in one \
              domain" );
         ("n_found", Json.Int expected);
         ("static1_ms", Json.Float s1);
         ("static2_ms", Json.Float s2);
         ("static4_ms", Json.Float s4);
         ("ws1_ms", Json.Float w1);
         ("ws2_ms", Json.Float w2);
         ("ws4_ms", Json.Float w4);
         ("ws4_tasks_spawned", Json.Int spawned);
         ("ws4_steals", Json.Int steals);
         ("ws4_idle_polls", Json.Int idle);
         ( "note",
           Json.Str
             (Printf.sprintf
                "measured on %d available core(s): speedup columns only mean \
                 anything above 1"
                (Domain.recommended_domain_count ())) );
       ])

let storage () =
  header "Disk storage: store/scan a compound collection through the buffer pool";
  let n_compounds = scale 2000 10000 in
  let compounds = Chem.generate ~n_compounds () in
  let path = Filename.temp_file "gql_bench_store" ".db" in
  let st = Gql_storage.Store.create ~pool_capacity:64 path in
  let (), t_write =
    time (fun () ->
        List.iter (fun g -> ignore (Gql_storage.Store.add_graph st g)) compounds)
  in
  Gql_storage.Store.flush st;
  Gql_storage.Store.close st;
  let size_kb = (Unix.stat path).Unix.st_size / 1024 in
  let st = Gql_storage.Store.open_existing ~pool_capacity:64 path in
  let p = FP.path [ "C"; "N" ] in
  let hits = ref 0 in
  let (), t_cold =
    time (fun () ->
        Gql_storage.Store.iter st ~f:(fun _ g ->
            if Engine.count_matches ~limit:1 p g > 0 then incr hits))
  in
  let cold_stats = Gql_storage.Store.pool_stats st in
  let (), t_warm =
    time (fun () ->
        Gql_storage.Store.iter st ~f:(fun _ g ->
            ignore (Engine.count_matches ~limit:1 p g)))
  in
  let warm_stats = Gql_storage.Store.pool_stats st in
  row "%d graphs, %d KiB file, write %.2f s\n" n_compounds size_kb t_write;
  row "cold scan + match: %.2f s (%d C-N hits), pool misses %d\n" t_cold !hits
    cold_stats.Gql_storage.Buffer_pool.misses;
  row "warm scan + match: %.2f s, extra misses %d, hits %d\n" t_warm
    (warm_stats.Gql_storage.Buffer_pool.misses
    - cold_stats.Gql_storage.Buffer_pool.misses)
    warm_stats.Gql_storage.Buffer_pool.hits;
  Gql_storage.Store.close st;
  Sys.remove path

(* governance smoke: the budget machinery (visited counter, step-budget
   compare, clock poll every 1024 checks) must be invisible on the §5
   workload. Same prepared spaces and orders on both sides; only the
   budget argument differs. Fails loudly if overhead exceeds 2%. *)
let budget_overhead () =
  header "Budget governance overhead: PPI clique search, governed vs ungoverned";
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  (* a real budget that never fires: the poll path executes (clock
     reads, token loads) but the search always runs to completion *)
  let governed = Gql_matcher.Budget.make ~deadline:3600.0 ~max_visited:max_int () in
  row "%-6s %10s %16s %16s %10s\n" "size" "queries" "ungoverned (ms)"
    "governed (ms)" "overhead";
  let cells =
    List.map
      (fun size ->
        let rng = Rng.create (60200 + size) in
        let n_queries = scale 80 400 in
        let prepared =
          List.init n_queries (fun _ ->
              let q = Queries.clique ~weights rng ~labels ~size in
              let space =
                Feasible.compute ~retrieval:`Profiles ~label_index:lidx
                  ~profile_index:pidx q g
              in
              let order = Order.greedy q ~sizes:(Feasible.sizes space) in
              (q, space, order))
        in
        let run_all ?budget () =
          List.iter
            (fun (q, space, order) ->
              ignore (Search.run ~limit:hit_limit ?budget ~order q g space))
            prepared
        in
        run_all () (* warmup *);
        run_all ~budget:governed ();
        (* paired rounds: the two sides run back-to-back so GC pauses
           and scheduler noise hit both; the per-round ratio is then
           load-invariant, and the median ratio sheds the outliers *)
        let pairs =
          Array.init 9 (fun _ ->
              let _, a = time (fun () -> run_all ()) in
              let _, b = time (fun () -> run_all ~budget:governed ()) in
              (a, b))
        in
        let t_plain = Array.fold_left (fun m (a, _) -> min m a) infinity pairs in
        let t_gov = Array.fold_left (fun m (_, b) -> min m b) infinity pairs in
        let ratios = Array.map (fun (a, b) -> b /. a) pairs in
        Array.sort compare ratios;
        let med = ratios.(Array.length ratios / 2) in
        row "%-6d %10d %16.3f %16.3f %9.2f%%\n" size n_queries (ms t_plain)
          (ms t_gov)
          (100.0 *. (med -. 1.0));
        (size, n_queries, t_plain, t_gov, ratios))
      [ 4; 5; 6 ]
  in
  let all_ratios =
    Array.concat (List.map (fun (_, _, _, _, rs) -> rs) cells)
  in
  Array.sort compare all_ratios;
  let overhead = all_ratios.(Array.length all_ratios / 2) -. 1.0 in
  row "overall overhead: %.2f%% (budget: 1h deadline + max_int steps, never fires)\n"
    (100.0 *. overhead);
  emit_json "budget.overhead"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "PPI clique queries, profiles retrieval, greedy order, limit 1000"
         );
         ( "sizes",
           Json.List
             (List.map
                (fun (size, n_queries, t_plain, t_gov, ratios) ->
                  Json.Obj
                    [
                      ("size", Json.Int size);
                      ("queries", Json.Int n_queries);
                      ("t_ungoverned_ms", Json.Float (ms t_plain));
                      ("t_governed_ms", Json.Float (ms t_gov));
                      ( "overhead_pct",
                        Json.Float
                          (100.0
                          *. (ratios.(Array.length ratios / 2) -. 1.0)) );
                    ])
                cells) );
         ("overhead_pct", Json.Float (100.0 *. overhead));
         ("threshold_pct", Json.Float 2.0);
       ]);
  if overhead >= 0.02 then (
    Printf.eprintf "FAIL: budget governance overhead %.2f%% >= 2%%\n"
      (100.0 *. overhead);
    exit 1)

(* observability smoke: the Gql_obs instrumentation must be invisible.
   Same prepared spaces and orders on both sides; one side runs with the
   default disabled instance, the other with a live one (counter flushes
   + phase spans). Asserting the *enabled* side under 2% bounds the
   disabled side too — disabled is strictly cheaper (one load-and-branch
   per operation). A counters snapshot of an instrumented engine run
   goes into the JSON trajectory. *)
let obs_overhead () =
  header "Observability overhead: PPI clique search, metrics off vs on";
  let module M = Gql_obs.Metrics in
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  row "%-6s %10s %16s %16s %10s\n" "size" "queries" "disabled (ms)"
    "enabled (ms)" "overhead";
  let cells =
    List.map
      (fun size ->
        let rng = Rng.create (70300 + size) in
        let n_queries = scale 80 400 in
        let prepared =
          List.init n_queries (fun _ ->
              let q = Queries.clique ~weights rng ~labels ~size in
              let space =
                Feasible.compute ~retrieval:`Profiles ~label_index:lidx
                  ~profile_index:pidx q g
              in
              let order = Order.greedy q ~sizes:(Feasible.sizes space) in
              (q, space, order))
        in
        let run_all ?metrics () =
          List.iter
            (fun (q, space, order) ->
              ignore (Search.run ~limit:hit_limit ?metrics ~order q g space))
            prepared
        in
        run_all () (* warmup *);
        run_all ~metrics:(M.create ()) ();
        (* Per-round times are ~10-20 ms, where a single GC pause is
           several percent: the median of paired ratios (what the budget
           experiment uses over longer rounds) is too noisy here.
           Instead take the minimum over rounds on each side — the
           noise-free estimate of the true cost — and alternate which
           side runs first so allocator/cache state biases neither. *)
        let rounds = 25 in
        let offs = Array.make rounds infinity in
        let ons = Array.make rounds infinity in
        for i = 0 to rounds - 1 do
          let run_off () = snd (time (fun () -> run_all ())) in
          let run_on () =
            let m = M.create () in
            snd (time (fun () -> run_all ~metrics:m ()))
          in
          if i land 1 = 0 then begin
            offs.(i) <- run_off ();
            ons.(i) <- run_on ()
          end
          else begin
            ons.(i) <- run_on ();
            offs.(i) <- run_off ()
          end
        done;
        let t_off = Array.fold_left min infinity offs in
        let t_on = Array.fold_left min infinity ons in
        row "%-6d %10d %16.3f %16.3f %9.2f%%\n" size n_queries (ms t_off)
          (ms t_on)
          (100.0 *. ((t_on /. t_off) -. 1.0));
        (size, n_queries, t_off, t_on))
      [ 4; 5; 6 ]
  in
  let sum f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells in
  let overhead =
    (sum (fun (_, _, _, t_on) -> t_on) /. sum (fun (_, _, t_off, _) -> t_off))
    -. 1.0
  in
  row "overall overhead: %.2f%% (full counter set + phase spans, live instance)\n"
    (100.0 *. overhead);
  (* one fully instrumented engine run, for the counters snapshot *)
  let metrics = M.create () in
  let rng = Rng.create 70399 in
  let snap_queries = scale 40 200 in
  for _ = 1 to snap_queries do
    let q = Queries.clique ~weights rng ~labels ~size:5 in
    ignore
      (Engine.run ~limit:hit_limit ~metrics ~label_index:lidx
         ~profile_index:pidx q g)
  done;
  let counters =
    List.map
      (fun c -> (M.counter_name c, Json.Int (M.get metrics c)))
      M.all_counters
  in
  row "instrumented snapshot (%d clique-5 queries):\n" snap_queries;
  List.iter
    (fun (name, v) ->
      match v with
      | Json.Int n when n > 0 -> row "  %-28s %12d\n" name n
      | _ -> ())
    counters;
  emit_json "obs.overhead"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "PPI clique queries, profiles retrieval, greedy order, limit 1000"
         );
         ( "sizes",
           Json.List
             (List.map
                (fun (size, n_queries, t_off, t_on) ->
                  Json.Obj
                    [
                      ("size", Json.Int size);
                      ("queries", Json.Int n_queries);
                      ("t_disabled_ms", Json.Float (ms t_off));
                      ("t_enabled_ms", Json.Float (ms t_on));
                      ( "overhead_pct",
                        Json.Float (100.0 *. ((t_on /. t_off) -. 1.0)) );
                    ])
                cells) );
         ("overhead_pct", Json.Float (100.0 *. overhead));
         ("threshold_pct", Json.Float 2.0);
         ("snapshot_queries", Json.Int snap_queries);
         ("counters", Json.Obj counters);
       ]);
  if overhead >= 0.02 then (
    Printf.eprintf "FAIL: observability overhead %.2f%% >= 2%%\n"
      (100.0 *. overhead);
    exit 1)

(* ---------------------------------------------------------------------- *)
(* bechamel micro-benchmarks of the core primitives                        *)

(* search phase, array-backed vs the retained seed list-based matcher,
   over identical precomputed candidate spaces and orders — the
   headline number of the BENCH_*.json trajectory *)
let micro_search_comparison () =
  header
    "Search phase: array-backed Search vs seed list-based Reference (PPI cliques)";
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  let ref_index = Gql_matcher.Reference.build_index g in
  row "%-6s %10s %18s %18s %10s\n" "size" "queries" "t_search_opt (ms)"
    "t_search_ref (ms)" "speedup";
  let cells =
    List.map
      (fun size ->
        let rng = Rng.create (31337 + size) in
        let n_queries = scale 80 400 in
        let prepared =
          List.init n_queries (fun _ ->
              let q = Queries.clique ~weights rng ~labels ~size in
              let space =
                Feasible.compute ~retrieval:`Profiles ~label_index:lidx
                  ~profile_index:pidx q g
              in
              let order = Order.greedy q ~sizes:(Feasible.sizes space) in
              (q, space, order))
        in
        (* same spaces, same orders: only the inner search differs.
           Each side runs once for warmup/answers, then best-of-3 timed
           passes to shed GC and scheduler noise. *)
        let best_of n f =
          let best = ref infinity in
          for _ = 1 to n do
            let _, t = time f in
            if t < !best then best := t
          done;
          !best
        in
        let opt =
          List.map
            (fun (q, space, order) ->
              Search.run ~limit:hit_limit ~order q g space)
            prepared
        in
        let t_opt =
          best_of 3 (fun () ->
              List.iter
                (fun (q, space, order) ->
                  ignore (Search.run ~limit:hit_limit ~order q g space))
                prepared)
        in
        let refr =
          List.map
            (fun (q, space, order) ->
              Gql_matcher.Reference.run ~index:ref_index ~limit:hit_limit ~order
                q g space)
            prepared
        in
        let t_ref =
          best_of 3 (fun () ->
              List.iter
                (fun (q, space, order) ->
                  ignore
                    (Gql_matcher.Reference.run ~index:ref_index ~limit:hit_limit
                       ~order q g space))
                prepared)
        in
        List.iter2
          (fun (a : Search.outcome) (b : Search.outcome) ->
            assert (a.Search.n_found = b.Search.n_found))
          opt refr;
        let speedup = t_ref /. t_opt in
        row "%-6d %10d %18.3f %18.3f %9.2fx\n" size n_queries (ms t_opt)
          (ms t_ref) speedup;
        (size, n_queries, t_opt, t_ref))
      [ 4; 5; 6 ]
  in
  let tot f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells in
  let t_opt_total = tot (fun (_, _, t, _) -> t) in
  let t_ref_total = tot (fun (_, _, _, t) -> t) in
  let speedup = t_ref_total /. t_opt_total in
  row "overall speedup (t_search_ref / t_search_opt): %.2fx\n" speedup;
  emit_json "micro.search_ppi"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "PPI clique queries, profiles retrieval, greedy order, limit 1000"
         );
         ( "sizes",
           Json.List
             (List.map
                (fun (size, n_queries, t_opt, t_ref) ->
                  Json.Obj
                    [
                      ("size", Json.Int size);
                      ("queries", Json.Int n_queries);
                      ("t_search_opt_ms", Json.Float (ms t_opt));
                      ("t_search_ref_ms", Json.Float (ms t_ref));
                      ("speedup", Json.Float (t_ref /. t_opt));
                    ])
                cells) );
         ("t_search_opt_ms", Json.Float (ms t_opt_total));
         ("t_search_ref_ms", Json.Float (ms t_ref_total));
         ("speedup", Json.Float speedup);
       ])

(* refinement kernels over identical profile-pruned spaces: the
   per-row auto dispatch ([Refine.refine]) vs always-packed vs the
   PR1-era consed lists + Hopcroft–Karp. Same fixpoint by construction
   (asserted row for row). The dispatch exists to fix the small-clique
   regression where packed-row setup cost lost to the lists — so the
   cell hard-fails if auto loses to either pure kernel beyond noise at
   any size. *)
let micro_refine_comparison () =
  header
    "Refine phase: auto kernel dispatch vs packed words vs consed lists (PPI \
     cliques)";
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  row "%-6s %10s %14s %14s %14s %10s\n" "size" "queries" "t_auto (ms)"
    "t_packed (ms)" "t_lists (ms)" "speedup";
  let cells =
    List.map
      (fun size ->
        let rng = Rng.create (51337 + size) in
        let n_queries = scale 60 300 in
        let prepared =
          List.init n_queries (fun _ ->
              let q = Queries.clique ~weights rng ~labels ~size in
              let space =
                Feasible.compute ~retrieval:`Profiles ~label_index:lidx
                  ~profile_index:pidx q g
              in
              (q, space))
        in
        let run refine =
          List.map (fun (q, space) -> fst (refine q g space)) prepared
        in
        let pass refine () =
          List.iter (fun (q, space) -> ignore (refine q g space)) prepared
        in
        let auto_pass = pass (fun q g s -> Refine.refine q g s) in
        let packed_pass = pass (fun q g s -> Refine.refine_packed q g s) in
        let lists_pass = pass (fun q g s -> Refine.refine_lists q g s) in
        let auto = run (fun q g s -> Refine.refine q g s) in
        let packed = run (fun q g s -> Refine.refine_packed q g s) in
        let lists = run (fun q g s -> Refine.refine_lists q g s) in
        (* measured interleaved (A P L, A P L, ...) so allocator and
           frequency drift hit the three kernels alike; best-of wins
           over mean under CI noise *)
        let t_auto = ref infinity
        and t_packed = ref infinity
        and t_lists = ref infinity in
        for _ = 1 to 5 do
          let _, ta = time auto_pass in
          let _, tp = time packed_pass in
          let _, tl = time lists_pass in
          t_auto := Float.min !t_auto ta;
          t_packed := Float.min !t_packed tp;
          t_lists := Float.min !t_lists tl
        done;
        let t_auto = !t_auto
        and t_packed = !t_packed
        and t_lists = !t_lists in
        List.iter2
          (fun (a : Feasible.space) (b : Feasible.space) ->
            assert (a.Feasible.candidates = b.Feasible.candidates))
          auto packed;
        List.iter2
          (fun (a : Feasible.space) (b : Feasible.space) ->
            assert (a.Feasible.candidates = b.Feasible.candidates))
          auto lists;
        let speedup = t_lists /. t_auto in
        row "%-6d %10d %14.3f %14.3f %14.3f %9.2fx\n" size n_queries (ms t_auto)
          (ms t_packed) (ms t_lists) speedup;
        (* two-part crossover claim: the dispatch must never lose to
           the list baseline (the PR5 size-4 regression this cell
           exists to pin — tight 5% allowance), and must track the
           better pure kernel within a wider band that absorbs
           run-to-run timer noise on the mixed path *)
        if t_auto > 1.05 *. t_lists then begin
          Printf.eprintf
            "FAIL: refine auto dispatch lost to lists at size %d: auto %.3fms \
             lists %.3fms\n"
            size (ms t_auto) (ms t_lists);
          exit 1
        end;
        if t_auto > 1.3 *. Float.min t_packed t_lists then begin
          Printf.eprintf
            "FAIL: refine auto dispatch lost at size %d: auto %.3fms packed \
             %.3fms lists %.3fms\n"
            size (ms t_auto) (ms t_packed) (ms t_lists);
          exit 1
        end;
        (size, n_queries, t_auto, t_packed, t_lists))
      [ 4; 5; 6 ]
  in
  let tot f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells in
  let t_auto_total = tot (fun (_, _, t, _, _) -> t) in
  let t_packed_total = tot (fun (_, _, _, t, _) -> t) in
  let t_lists_total = tot (fun (_, _, _, _, t) -> t) in
  let speedup = t_lists_total /. t_auto_total in
  row "overall speedup (t_refine_lists / t_refine_auto): %.2fx\n" speedup;
  emit_json "micro.refine_ppi"
    (Json.Obj
       [
         ( "workload",
           Json.Str "PPI clique queries, profiles retrieval, full-level refine"
         );
         ( "sizes",
           Json.List
             (List.map
                (fun (size, n_queries, t_auto, t_packed, t_lists) ->
                  Json.Obj
                    [
                      ("size", Json.Int size);
                      ("queries", Json.Int n_queries);
                      ("t_refine_auto_ms", Json.Float (ms t_auto));
                      ("t_refine_words_ms", Json.Float (ms t_packed));
                      ("t_refine_lists_ms", Json.Float (ms t_lists));
                      ("speedup", Json.Float (t_lists /. t_auto));
                    ])
                cells) );
         ("t_refine_auto_ms", Json.Float (ms t_auto_total));
         ("t_refine_words_ms", Json.Float (ms t_packed_total));
         ("t_refine_lists_ms", Json.Float (ms t_lists_total));
         ("speedup", Json.Float speedup);
       ])

let micro () =
  micro_search_comparison ();
  micro_refine_comparison ();
  let open Bechamel in
  let open Toolkit in
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let rng = Rng.create 4242 in
  let triangle = Queries.clique rng ~labels ~size:3 in
  let order_q = Queries.clique rng ~labels ~size:6 in
  let order_sizes =
    Feasible.sizes
      (Feasible.compute ~retrieval:`Profiles ~label_index:lidx
         ~profile_index:pidx order_q g)
  in
  let module Itree = Gql_index.Btree.Make (Int) in
  let keys = Array.init 10_000 (fun i -> i * 2654435761 land 0xFFFFFF) in
  let tree = Array.fold_left (fun t k -> Itree.add k k t) (Itree.empty ()) keys in
  let prof_a = Profile.of_labels [ "A"; "B"; "C"; "C"; "D" ] in
  let prof_b = Profile.of_labels [ "A"; "C"; "D" ] in
  let bip =
    {
      Gql_matcher.Bipartite.nl = 6;
      nr = 6;
      adj = Array.init 6 (fun i -> [ i; (i + 1) mod 6; (i + 2) mod 6 ]);
    }
  in
  let tests =
    Test.make_grouped ~name:"core"
      [
        Test.make ~name:"btree-find"
          (Staged.stage (fun () -> ignore (Itree.find keys.(137) tree)));
        Test.make ~name:"btree-add"
          (Staged.stage (fun () -> ignore (Itree.add 424242 0 tree)));
        Test.make ~name:"profile-contains"
          (Staged.stage (fun () -> ignore (Profile.contains ~big:prof_a ~small:prof_b)));
        Test.make ~name:"hopcroft-karp"
          (Staged.stage (fun () -> ignore (Gql_matcher.Bipartite.hopcroft_karp bip)));
        Test.make ~name:"order-greedy"
          (Staged.stage (fun () ->
               ignore (Order.greedy order_q ~sizes:order_sizes)));
        Test.make ~name:"triangle-query-optimized"
          (Staged.stage (fun () ->
               ignore
                 (Engine.run ~limit:hit_limit ~label_index:lidx ~profile_index:pidx
                    triangle g)));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  header "Micro-benchmarks (bechamel, monotonic clock, ns/run)";
  let estimates = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        estimates := (name, est) :: !estimates;
        row "%-36s %14.1f ns\n" name est
      | _ -> row "%-36s %14s\n" name "-")
    results;
  emit_json "micro.bechamel_ns"
    (Json.Obj
       (List.map
          (fun (name, est) -> (name, Json.Float est))
          (List.sort compare !estimates)))

(* ---------------------------------------------------------------------- *)
(* concurrent query service: batch throughput vs a sequential loop         *)

(* A mixed chem/PPI workload of repeated queries, run twice: once as a
   plain sequential [Gql.run_query] loop (each query rebuilds its
   indexes from scratch — what a naive client does), once through
   [Gql_exec.Service.run_batch] where the profile-index, plan and
   retrieval caches are shared across the batch. Results must be
   identical; the batch side must be at least 2x faster and must show
   warm-cache hits. *)
let exec_service () =
  header
    "Concurrent query service: shared-cache batch vs sequential run_query \
     loop (chem + PPI workload)";
  let module Service = Gql_exec.Service in
  let module M = Gql_obs.Metrics in
  let module Eval = Gql_core.Eval in
  let module Gql = Gql_core.Gql in
  let chem = Chem.generate ~seed:2008 ~n_compounds:(scale 120 400) () in
  let ppi, ppi_lidx, _ = Lazy.force ppi_env in
  let docs = [ ("CHEM", chem); ("PPI", [ ppi ]) ] in
  let chem_chain l1 l2 l3 =
    (* 3-node chains over rarer atoms: selective (few matches, so both
       sides do little per-match template work) but setup-heavy — the
       sequential side rebuilds indexes, retrieval, refinement and
       ordering for all compounds on every repeat *)
    Printf.sprintf
      {|for graph P { node a where label=%S; node b where label=%S; node c where label=%S; edge e1 (a, b); edge e2 (b, c); } exhaustive in doc("CHEM") return graph { node m <n=1>; }|}
      l1 l2 l3
  in
  let ppi_path ls =
    match Queries.top_labels ppi_lidx 6 with
    | l1 :: l2 :: l3 :: _ ->
      Printf.sprintf
        {|for graph P { node a where label=%S; node b where label=%S; node c where label=%S; edge e1 (a, b); edge e2 (b, c); } in doc("PPI") return graph { node m <n=2>; }|}
        (List.nth [ l1; l2; l3 ] (ls mod 3))
        (List.nth [ l2; l3; l1 ] (ls mod 3))
        (List.nth [ l3; l1; l2 ] (ls mod 3))
    | _ -> assert false
  in
  let distinct =
    [
      chem_chain "N" "C" "S";
      chem_chain "S" "C" "N";
      chem_chain "O" "S" "O";
      chem_chain "N" "C" "N";
      ppi_path 0;
      ppi_path 1;
      ppi_path 2;
    ]
  in
  let rounds = scale 8 16 in
  (* One deliberately heavy query heads the queue: a 4-node chain over
     same-label complete graphs whose search alone crosses the
     scheduler quantum many times while the whole round-robin is queued
     behind it. The PR4 incarnation of this bench ran only cheap
     selective queries, so `yields` sat at 0 and the preemption path
     was never exercised — now it is asserted nonzero. *)
  let bombs = List.init 4 (fun _ ->
      let n = 7 in
      let edges = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          edges := (i, j) :: !edges
        done
      done;
      Graph.of_labeled ~labels:(Array.make n "A") !edges)
  in
  let docs = ("K", bombs) :: docs in
  let bomb_query =
    {|for graph P { node a where label="A"; node b where label="A"; node c where label="A"; node d where label="A"; edge e1 (a, b); edge e2 (b, c); edge e3 (c, d); } exhaustive in doc("K") return graph { node m <n=3>; }|}
  in
  (* round-robin over the pool: every query text after round one is a
     repeat, so the second occurrence onwards must hit the caches *)
  let queries =
    bomb_query :: List.concat (List.init rounds (fun _ -> distinct))
  in
  let n = List.length queries in
  let count_returned r = List.length (Eval.returned r) in
  let run_seq () =
    List.fold_left
      (fun acc q -> acc + count_returned (Gql.run_query ~docs q))
      0 queries
  in
  ignore (run_seq ()) (* warmup: page in both datasets *);
  let seq_returned, t_seq = time run_seq in
  let (outcomes, svc), t_batch =
    time (fun () -> Service.run_batch ~jobs:2 ~quantum:512 ~docs queries)
  in
  let batch_returned =
    List.fold_left
      (fun acc o ->
        match o.Service.o_status with
        | Service.Done r -> acc + count_returned r
        | Service.Rejected _ | Service.Failed _ -> acc)
      0 outcomes
  in
  let agg = Service.metrics svc in
  (if Sys.getenv_opt "EXEC_DEBUG" <> None then Format.printf "%a@." M.pp agg);
  let hits = M.get agg M.Exec_cache_hit in
  let misses = M.get agg M.Exec_cache_miss in
  let yields = M.get agg M.Exec_queue_yields in
  let speedup = t_seq /. t_batch in
  let qps t = float_of_int n /. t in
  row "%-12s %10s %14s %12s\n" "side" "queries" "total (ms)" "queries/s";
  row "%-12s %10d %14.2f %12.1f\n" "sequential" n (ms t_seq) (qps t_seq);
  row "%-12s %10d %14.2f %12.1f\n" "batch" n (ms t_batch) (qps t_batch);
  row
    "speedup %.2fx; %d returned graphs per side; cache %d hit / %d miss, %d \
     yield(s)\n"
    speedup seq_returned hits misses yields;
  emit_json "exec.batch"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "chem edge queries (exhaustive) + PPI path queries, round-robin \
              repeats" );
         ("queries", Json.Int n);
         ("distinct", Json.Int (List.length distinct));
         ("rounds", Json.Int rounds);
         ("t_sequential_ms", Json.Float (ms t_seq));
         ("t_batch_ms", Json.Float (ms t_batch));
         ("speedup", Json.Float speedup);
         ("returned", Json.Int seq_returned);
         ("cache_hits", Json.Int hits);
         ("cache_misses", Json.Int misses);
         ("yields", Json.Int yields);
         ("threshold_speedup", Json.Float 2.0);
       ]);
  if batch_returned <> seq_returned then begin
    Printf.eprintf "FAIL: batch returned %d graphs, sequential %d\n"
      batch_returned seq_returned;
    exit 1
  end;
  if hits = 0 then begin
    Printf.eprintf "FAIL: no exec.cache.hit on a repeated workload\n";
    exit 1
  end;
  if yields = 0 then begin
    Printf.eprintf
      "FAIL: no exec.queue.yields — the workload never crossed the quantum\n";
    exit 1
  end;
  if speedup < 2.0 then begin
    Printf.eprintf "FAIL: batch speedup %.2fx < 2x\n" speedup;
    exit 1
  end

(* ---------------------------------------------------------------------- *)
(* adaptive planner: mid-query re-planning vs the static greedy order     *)

(* Two workloads, two claims. On the Zipf/hub skewed graph the static
   constant-γ greedy picks a suffix that joins the non-reducing mesh
   side first; the adaptive driver detects the fan-out drift after its
   first root slice, re-plans to the leaf-first suffix and must win by
   ≥ 1.2x. On the uniform PPI cliques the estimates are fine, no
   re-plan triggers, and the adaptive driver's slicing/profiling
   overhead must stay within noise of the static search. Both cells
   assert identical match counts — re-planning must never change the
   answer. *)
let adaptive () =
  let module Adapt = Gql_matcher.Adapt in
  header "Adaptive planner: hub-skewed workload (re-plan wins)";
  let model = Cost.Constant Cost.default_constant in
  let g =
    Synthetic.hub (Rng.create 2008) ~n_hubs:40 ~n_leaves:400 ~n_mesh:400
  in
  let p = FP.path [ "M"; "H"; "L" ] in
  let space = Feasible.compute ~retrieval:`Node_attrs p g in
  let sizes = Feasible.sizes space in
  let order = Order.greedy ~model p ~sizes in
  let static_out = Search.run ~order p g space in
  let adaptive_res = Adapt.run ~model ~order p g space in
  if adaptive_res.Adapt.outcome.Search.n_found <> static_out.Search.n_found
  then begin
    Printf.eprintf "FAIL: adaptive found %d matches, static %d\n"
      adaptive_res.Adapt.outcome.Search.n_found static_out.Search.n_found;
    exit 1
  end;
  if adaptive_res.Adapt.replans = 0 then begin
    Printf.eprintf "FAIL: hub workload triggered no re-plan\n";
    exit 1
  end;
  let reps = scale 5 20 in
  let t_static = ref infinity and t_adaptive = ref infinity in
  for _ = 1 to 3 do
    let _, ts =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Search.run ~order p g space)
          done)
    in
    let _, ta =
      time (fun () ->
          for _ = 1 to reps do
            ignore (Adapt.run ~model ~order p g space)
          done)
    in
    t_static := Float.min !t_static ts;
    t_adaptive := Float.min !t_adaptive ta
  done;
  let t_static = ms !t_static /. float_of_int reps in
  let t_adaptive = ms !t_adaptive /. float_of_int reps in
  let speedup = t_static /. t_adaptive in
  row "%d matches; static order [%s], adaptive re-planned to [%s]\n"
    static_out.Search.n_found
    (String.concat ";" (Array.to_list (Array.map string_of_int order)))
    (String.concat ";"
       (Array.to_list (Array.map string_of_int adaptive_res.Adapt.final_order)));
  row "%-10s %12s\n" "engine" "ms/query";
  row "%-10s %12.3f\n" "static" t_static;
  row "%-10s %12.3f\n" "adaptive" t_adaptive;
  row "speedup (static / adaptive): %.2fx, %d re-plan(s)\n" speedup
    adaptive_res.Adapt.replans;
  if speedup < 1.2 then begin
    Printf.eprintf "FAIL: adaptive speedup %.2fx < 1.2x on the hub workload\n"
      speedup;
    exit 1
  end;
  emit_json "adaptive.skewed"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "hub graph (40 hubs, 400 Zipf leaves, 400 mesh nodes), M–H–L \
              path, constant-γ static order joins mesh first" );
         ("n_found", Json.Int static_out.Search.n_found);
         ("replans", Json.Int adaptive_res.Adapt.replans);
         ("static_ms", Json.Float t_static);
         ("adaptive_ms", Json.Float t_adaptive);
         ("speedup", Json.Float speedup);
         ("threshold_speedup", Json.Float 1.2);
       ]);
  header "Adaptive planner: uniform PPI cliques (no re-plan, overhead only)";
  let g, lidx, pidx = Lazy.force ppi_env in
  let labels = Queries.top_labels lidx 40 in
  let weights = Queries.label_weights lidx labels in
  row "%-6s %10s %14s %14s %10s\n" "size" "queries" "static (ms)"
    "adaptive (ms)" "ratio";
  let cells =
    List.map
      (fun size ->
        let rng = Rng.create (77001 + size) in
        let n_queries = scale 40 200 in
        let prepared =
          List.init n_queries (fun _ ->
              let q = Queries.clique ~weights rng ~labels ~size in
              let space =
                Feasible.compute ~retrieval:`Profiles ~label_index:lidx
                  ~profile_index:pidx q g
              in
              let space, _ = Refine.refine q g space in
              let order = Order.greedy ~model q ~sizes:(Feasible.sizes space) in
              (q, space, order))
        in
        let static_pass () =
          List.fold_left
            (fun acc (q, space, order) ->
              acc + (Search.run ~order q g space).Search.n_found)
            0 prepared
        in
        let adaptive_pass () =
          List.fold_left
            (fun acc (q, space, order) ->
              acc
              + (Adapt.run ~model ~order q g space).Adapt.outcome
                  .Search.n_found)
            0 prepared
        in
        let found_static = static_pass () and found_adaptive = adaptive_pass () in
        if found_static <> found_adaptive then begin
          Printf.eprintf
            "FAIL: size %d: adaptive found %d total matches, static %d\n" size
            found_adaptive found_static;
          exit 1
        end;
        let t_static = ref infinity and t_adaptive = ref infinity in
        for _ = 1 to 5 do
          let _, ts = time (fun () -> ignore (static_pass ())) in
          let _, ta = time (fun () -> ignore (adaptive_pass ())) in
          t_static := Float.min !t_static ts;
          t_adaptive := Float.min !t_adaptive ta
        done;
        let ratio = !t_adaptive /. !t_static in
        row "%-6d %10d %14.3f %14.3f %9.2fx\n" size n_queries (ms !t_static)
          (ms !t_adaptive) ratio;
        (size, n_queries, !t_static, !t_adaptive))
      [ 4; 5; 6 ]
  in
  let tot f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells in
  let t_static_total = tot (fun (_, _, t, _) -> t) in
  let t_adaptive_total = tot (fun (_, _, _, t) -> t) in
  let ratio = t_adaptive_total /. t_static_total in
  row "overall overhead (t_adaptive / t_static): %.2fx\n" ratio;
  (* the "never lose beyond noise" claim; the committed snapshot must
     show ≤ 1.05, the in-run gate allows CI timer jitter on top *)
  if ratio > 1.15 then begin
    Printf.eprintf
      "FAIL: adaptive overhead %.2fx > 1.15x on the uniform PPI workload\n"
      ratio;
    exit 1
  end;
  emit_json "adaptive.ppi"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "PPI clique queries, profiles retrieval + refine, greedy static \
              order vs adaptive driver (uniform data: no re-plan expected)" );
         ( "sizes",
           Json.List
             (List.map
                (fun (size, n_queries, ts, ta) ->
                  Json.Obj
                    [
                      ("size", Json.Int size);
                      ("queries", Json.Int n_queries);
                      ("static_ms", Json.Float (ms ts));
                      ("adaptive_ms", Json.Float (ms ta));
                      ("ratio", Json.Float (ta /. ts));
                    ])
                cells) );
         ("static_ms", Json.Float (ms t_static_total));
         ("adaptive_ms", Json.Float (ms t_adaptive_total));
         ("ratio", Json.Float ratio);
         ("threshold_ratio", Json.Float 1.05);
       ])

(* ---------------------------------------------------------------------- *)
(* online write path: incremental index maintenance and the txn log        *)

(* Two claims. (1) On r-hop-local updates (a relabel or a new edge
   dirties only its radius-1 ball) maintaining the label/profile
   indexes from the mutation delta must beat rebuilding them from
   scratch by ≥ 3x — that is the point of carrying the dirty set
   through [Mutate]. The final incremental profile index is checked
   node-for-node against the rebuild, so the speedup cannot come from
   computing less. (2) The transaction log's group commit: staging N
   DML records and publishing them with one superblock swap vs a
   flush per record. *)
let write_path () =
  let module LI = Gql_index.Label_index in
  let module PI = Gql_index.Profile_index in
  header "Online writes: incremental index maintenance vs full rebuild";
  let g0, li0, pi0 = Lazy.force synthetic_10k in
  let n = Graph.n_nodes g0 in
  let n_updates = scale 25 100 in
  let relabels = [| "W1"; "W2"; "W3" |] in
  (* precompute the update trajectory so both sides time pure index
     work over identical (graph, delta) pairs *)
  let trajectory =
    let cur = ref g0 in
    List.init n_updates (fun i ->
        let v = i * 2654435761 land 0x3FFFFFFF mod n in
        let op =
          if i mod 3 = 2 then
            Mutate.Add_edge
              { name = None; src = v; dst = (v + 7) mod n; tuple = Tuple.empty }
          else
            Mutate.Set_node
              {
                v;
                tuple = Tuple.make [ ("label", Value.Str relabels.(i mod 3)) ];
              }
        in
        let before = !cur in
        let after, delta = Mutate.apply ~r:1 before op in
        cur := after;
        (before, after, delta))
  in
  let final = match List.rev trajectory with (_, g, _) :: _ -> g | [] -> g0 in
  let recomputed = ref 0 in
  let (li_inc, pi_inc), t_incremental =
    time (fun () ->
        List.fold_left
          (fun (li, pi) (before, after, delta) ->
            let li = LI.update li ~old_graph:before after delta in
            let pi, k = PI.update pi after delta in
            recomputed := !recomputed + k;
            (li, pi))
          (li0, pi0) trajectory)
  in
  let _, t_rebuild =
    time (fun () ->
        List.iter
          (fun (_, after, _) ->
            ignore (LI.build after);
            ignore (PI.build ~r:1 after))
          trajectory)
  in
  (* oracle: the maintained index is the rebuilt index *)
  let li_full = LI.build final and pi_full = PI.build ~r:1 final in
  for v = 0 to Graph.n_nodes final - 1 do
    if not (Profile.equal (PI.profile pi_inc v) (PI.profile pi_full v)) then begin
      Printf.eprintf "FAIL: incremental profile of node %d diverged\n" v;
      exit 1
    end
  done;
  List.iter
    (fun l ->
      if LI.nodes_with_label li_inc l <> LI.nodes_with_label li_full l then begin
        Printf.eprintf "FAIL: incremental postings for %S diverged\n" l;
        exit 1
      end)
    (LI.labels li_full);
  let speedup = t_rebuild /. t_incremental in
  row "%d r-hop-local updates on %d nodes: %d profiles recomputed (%.1f/update)\n"
    n_updates n !recomputed
    (float_of_int !recomputed /. float_of_int n_updates);
  row "%-14s %14s\n" "side" "total (ms)";
  row "%-14s %14.2f\n" "incremental" (ms t_incremental);
  row "%-14s %14.2f\n" "rebuild" (ms t_rebuild);
  row "speedup (rebuild / incremental): %.1fx\n" speedup;
  if speedup < 3.0 then begin
    Printf.eprintf "FAIL: incremental maintenance speedup %.1fx < 3x\n" speedup;
    exit 1
  end;
  header "Transaction log: group commit vs a flush per record";
  let base =
    let b = Graph.Builder.create ~name:"G" () in
    for i = 0 to 63 do
      ignore
        (Graph.Builder.add_node b
           ~name:(Printf.sprintf "n%d" i)
           (Tuple.make [ ("label", Value.Str "A") ]))
    done;
    Graph.Builder.build b
  in
  let n_txns = scale 50 200 in
  let op i =
    Mutate.Set_node
      { v = i mod 64; tuple = Tuple.make [ ("label", Value.Str "B") ] }
  in
  let with_store f =
    let path = Filename.temp_file "gql_bench_write" ".db" in
    let st = Gql_storage.Store.create path in
    let gid = Gql_storage.Store.add_graph st base in
    Gql_storage.Store.flush st;
    let _, t = time (fun () -> f st gid) in
    Gql_storage.Store.close st;
    Sys.remove path;
    t
  in
  let t_per_txn =
    with_store (fun st gid ->
        for i = 1 to n_txns do
          ignore (Gql_storage.Store.append_txn st ~gid [ op i ]);
          Gql_storage.Store.flush st
        done)
  in
  let t_grouped =
    with_store (fun st gid ->
        for i = 1 to n_txns do
          ignore (Gql_storage.Store.append_txn st ~gid [ op i ])
        done;
        Gql_storage.Store.flush st)
  in
  let commit_speedup = t_per_txn /. t_grouped in
  row "%d single-op transactions\n" n_txns;
  row "%-22s %14s %14s\n" "commit policy" "total (ms)" "txns/s";
  row "%-22s %14.2f %14.0f\n" "flush per txn" (ms t_per_txn)
    (float_of_int n_txns /. t_per_txn);
  row "%-22s %14.2f %14.0f\n" "one group commit" (ms t_grouped)
    (float_of_int n_txns /. t_grouped);
  row "group-commit speedup: %.1fx (both fsync-bound sides replay identically)\n"
    commit_speedup;
  emit_json "write.path"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "10K-node synthetic graph, radius-1-local relabels and edge \
              inserts; index maintenance from Mutate deltas vs full rebuild; \
              64-node store, single-op txn records" );
         ("updates", Json.Int n_updates);
         ("profiles_recomputed", Json.Int !recomputed);
         ("t_incremental_ms", Json.Float (ms t_incremental));
         ("t_rebuild_ms", Json.Float (ms t_rebuild));
         ("speedup", Json.Float speedup);
         ("threshold_speedup", Json.Float 3.0);
         ("txns", Json.Int n_txns);
         ("t_flush_per_txn_ms", Json.Float (ms t_per_txn));
         ("t_group_commit_ms", Json.Float (ms t_grouped));
         ("group_commit_speedup", Json.Float commit_speedup);
       ])

(* ---------------------------------------------------------------------- *)
(* path queries: RPQ reachability vs naive unrolled evaluation            *)

(* The workload the depth-16 bug silently broke: single-source
   reachability over a long chain. The naive evaluator unrolls the
   recursive motif into one flat chain pattern per length and runs each
   through the full engine; the RPQ engine answers every pair from the
   reachability index after one O(V+E) build. Both must produce the
   same target set — the bench is also the correctness post-mortem,
   reporting how many targets an unroll capped at 16 (the old default)
   would have missed. *)
let paths () =
  header "Path queries: reachability fast path vs unrolled evaluation";
  let n = scale 128 512 in
  let b = Graph.Builder.create ~directed:true ~name:"chain" () in
  for i = 0 to n - 1 do
    let t =
      if i = 0 then Tuple.make [ ("s", Value.Str "1") ] else Tuple.empty
    in
    ignore (Graph.Builder.add_node b t)
  done;
  for i = 0 to n - 2 do
    ignore (Graph.Builder.add_edge b i (i + 1))
  done;
  let g = Graph.Builder.build b in
  (* unrolled flat chain of exactly k hops from the source, built by
     the same lazy bounded-repetition unroll the motif layer uses *)
  let chain_pattern k =
    Gql_core.Gql.pattern_of_string
      (Printf.sprintf {|graph P { node a <s="1">; node b; edge (a, b) *%d; }|}
         k)
  in
  let target_of p =
    let k = FP.size p in
    let rec find i = if FP.var_name p i = "b" then i else find (i + 1) in
    ignore k;
    find 0
  in
  let unrolled_targets max_len patterns =
    let hits = Hashtbl.create 64 in
    List.iteri
      (fun i p ->
        if i < max_len then
          let o =
            (Engine.run ~exhaustive:true p g).Engine.outcome
          in
          let bi = target_of p in
          List.iter
            (fun phi -> Hashtbl.replace hits phi.(bi) ())
            o.Search.mappings)
      patterns;
    List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) hits [])
  in
  (* pattern construction is not part of the measured evaluation *)
  let patterns = List.init (n - 1) (fun i -> chain_pattern (i + 1)) in
  let naive, t_naive = time (fun () -> unrolled_targets (n - 1) patterns) in
  let module Rpq = Gql_matcher.Rpq in
  let seg =
    {
      Rpq.seg_src = 0;
      seg_dst = 1;
      seg_min = 1;
      seg_max = None;
      seg_tuple = Tuple.empty;
      seg_pred = Pred.True;
    }
  in
  let rpq, t_rpq =
    time (fun () ->
        let ctx = Rpq.ctx g in
        let out = ref [] in
        for v = n - 1 downto 0 do
          if fst (Rpq.segment_holds ctx seg ~src:0 ~dst:v) then
            out := v :: !out
        done;
        !out)
  in
  if naive <> rpq then begin
    Printf.eprintf "FAIL: unrolled and RPQ target sets differ (%d vs %d)\n"
      (List.length naive) (List.length rpq);
    exit 1
  end;
  let speedup = t_naive /. t_rpq in
  (* the old evaluator: unrolling silently capped at depth 16 *)
  let truncated16 = unrolled_targets 16 patterns in
  let missed = List.length rpq - List.length truncated16 in
  row "%d-node directed chain, single tagged source\n" n;
  row "%-28s %14s %10s\n" "evaluation" "total (ms)" "targets";
  row "%-28s %14.2f %10d\n" "unrolled (all lengths)" (ms t_naive)
    (List.length naive);
  row "%-28s %14.2f %10d\n" "RPQ reachability index" (ms t_rpq)
    (List.length rpq);
  row "%-28s %14s %10d   (%d silently missed)\n" "unrolled, capped at 16"
    "-" (List.length truncated16) missed;
  row "fast-path speedup: %.1fx (threshold 5x)\n" speedup;
  if missed <> n - 1 - 16 then begin
    Printf.eprintf "FAIL: expected the 16-cap to miss %d targets, missed %d\n"
      (n - 1 - 16) missed;
    exit 1
  end;
  if speedup < 5.0 then begin
    Printf.eprintf "FAIL: RPQ speedup %.1fx < 5x\n" speedup;
    exit 1
  end;
  (* a shortest witness across the whole chain, for the record *)
  let (_, t_witness) =
    time (fun () ->
        match
          fst (Rpq.shortest_walk (Rpq.ctx g) seg ~src:0 ~dst:(n - 1))
        with
        | Some (nodes, _) -> assert (List.length nodes = n)
        | None -> assert false)
  in
  row "shortest %d-hop witness walk: %.2f ms\n" (n - 1) (ms t_witness);
  emit_json "paths.reachability"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "directed chain, single-source reachability; unrolled flat \
              chains (one engine run per length) vs reachability-index \
              fast path; 16-cap row reproduces the old silent truncation" );
         ("nodes", Json.Int n);
         ("targets", Json.Int (List.length rpq));
         ("t_unrolled_ms", Json.Float (ms t_naive));
         ("t_rpq_ms", Json.Float (ms t_rpq));
         ("speedup", Json.Float speedup);
         ("threshold_speedup", Json.Float 5.0);
         ("missed_at_depth16", Json.Int missed);
         ("t_witness_ms", Json.Float (ms t_witness));
       ])

(* ---------------------------------------------------------------------- *)

(* ---------------------------------------------------------------------- *)
(* serve: the wire-protocol server under closed-loop multi-client load    *)

(* Three server stacks run in-process over unix sockets: a single
   server holding the whole chem collection, and a 2-shard stack
   (positions mod 2) behind a router. The load generator is N client
   threads, each a blocking connection (in-flight depth 1 — closed
   loop), pulling request slots from a shared counter; every request's
   latency lands in the percentile cells. Gates:
   - router scatter-gather results = single-process results (sorted
     multiset of rendered graphs) — always;
   - killing one shard mid-load yields typed shard-failure partial
     responses on affected requests and every request completes — always;
   - 2-shard throughput ≥ 1.5x single-shard — only with ≥ 2 cores (the
     shards' worker domains must actually run in parallel; on a
     single-core container the measured ratio is recorded with a note,
     the PR5 precedent). *)
let serve_bench () =
  header "Wire-protocol serving: single vs 2-shard scatter-gather";
  let module Service = Gql_exec.Service in
  let module Server = Gql_exec.Server in
  let module Router = Gql_exec.Router in
  let module Client = Gql_exec.Client in
  let module Protocol = Gql_exec.Protocol in
  let dir = Filename.temp_file "gql_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock name = Filename.concat dir (name ^ ".sock") in
  let chem = Chem.generate ~seed:2008 ~n_compounds:(scale 60 200) () in
  let part i = List.filteri (fun pos _ -> pos mod 2 = i) chem in
  (* selective but collection-scanning: every request walks all (its
     side's) compounds; the unconstrained middle node gives the result
     graphs distinct renderings, so the equality gate compares real
     content, not just counts *)
  let query =
    {|for graph P { node a where label="S"; node b; node c where label="O"; edge e1 (a, b); edge e2 (b, c); } exhaustive in doc("CHEM") return graph { node m <l=P.b.label>; }|}
  in
  let svc_single = Service.create ~jobs:1 ~docs:[ ("CHEM", chem) ] () in
  let svc0 = Service.create ~jobs:1 ~docs:[ ("CHEM", part 0) ] () in
  let svc1 = Service.create ~jobs:1 ~docs:[ ("CHEM", part 1) ] () in
  let srv_single =
    Server.create (Server.Local svc_single) ~addr:(sock "single")
  in
  let srv0 = Server.create (Server.Local svc0) ~addr:(sock "shard0") in
  let srv1 = Server.create (Server.Local svc1) ~addr:(sock "shard1") in
  let router = Router.connect ~timeout:30.0 [ sock "shard0"; sock "shard1" ] in
  let srv_router =
    Server.create (Server.Routed router) ~addr:(sock "router")
  in
  let spawn srv = Thread.create (fun () -> Server.serve_forever srv) () in
  let th_single = spawn srv_single in
  let th0 = spawn srv0 in
  let th1 = spawn srv1 in
  let th_router = spawn srv_router in
  (* correctness first: the merged result set must equal the
     single-process one as a sorted multiset (shard interleaving is
     allowed to change order, nothing else) *)
  let one_query addr =
    let c = Client.connect ~timeout:60.0 addr in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () -> Client.query c query)
  in
  let r_single = one_query (sock "single") in
  let r_routed = one_query (sock "router") in
  let sorted r = List.sort compare r.Protocol.qr_graphs in
  if r_single.Protocol.qr_status <> "ok" || r_routed.Protocol.qr_status <> "ok"
  then begin
    Printf.eprintf "FAIL: serve correctness queries did not both succeed\n";
    exit 1
  end;
  if sorted r_single <> sorted r_routed then begin
    Printf.eprintf
      "FAIL: scatter-gather returned %d graph(s), single-process %d — result \
       sets differ\n"
      (List.length r_routed.Protocol.qr_graphs)
      (List.length r_single.Protocol.qr_graphs);
    exit 1
  end;
  (* the closed-loop load phase *)
  let n_clients = 4 in
  let total = scale 80 240 in
  let load addr =
    let next = Atomic.make 0 in
    let lat_m = Mutex.create () in
    let lats = ref [] in
    let failures = Atomic.make 0 in
    let client () =
      let c = Client.connect ~timeout:60.0 addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let rec go () =
            if Atomic.fetch_and_add next 1 < total then begin
              let t0 = Unix.gettimeofday () in
              let r = Client.query c query in
              let dt = Unix.gettimeofday () -. t0 in
              if r.Protocol.qr_status <> "ok" then Atomic.incr failures;
              Mutex.lock lat_m;
              lats := ms dt :: !lats;
              Mutex.unlock lat_m;
              go ()
            end
          in
          go ())
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init n_clients (fun _ -> Thread.create client ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    if Atomic.get failures > 0 then begin
      Printf.eprintf "FAIL: %d load request(s) failed against %s\n"
        (Atomic.get failures) addr;
      exit 1
    end;
    let lats = !lats in
    ( float_of_int (List.length lats) /. wall,
      percentile 50.0 lats,
      percentile 95.0 lats,
      percentile 99.0 lats )
  in
  let qps_s, p50_s, p95_s, p99_s = load (sock "single") in
  let qps_r, p50_r, p95_r, p99_r = load (sock "router") in
  let speedup = qps_r /. qps_s in
  let cores = Domain.recommended_domain_count () in
  row "%-10s %10s %12s %12s %12s\n" "side" "qps" "p50 (ms)" "p95 (ms)"
    "p99 (ms)";
  row "%-10s %10.1f %12.3f %12.3f %12.3f\n" "single" qps_s p50_s p95_s p99_s;
  row "%-10s %10.1f %12.3f %12.3f %12.3f\n" "2-shard" qps_r p50_r p95_r p99_r;
  row "scatter-gather speedup %.2fx on %d core(s)\n" speedup cores;
  (* kill one shard mid-load: affected requests must come back as typed
     shard-failure partial results — and every request must come back *)
  let kill_total = 40 in
  let kill_next = Atomic.make 0 in
  let kill_done = Atomic.make 0 in
  let statuses_m = Mutex.create () in
  let statuses = ref [] in
  let kill_client () =
    let c = Client.connect ~timeout:60.0 (sock "router") in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let rec go () =
          if Atomic.fetch_and_add kill_next 1 < kill_total then begin
            let r = Client.query c query in
            Mutex.lock statuses_m;
            statuses := (r.Protocol.qr_status, r.Protocol.qr_shards_ok,
                         List.length r.Protocol.qr_graphs) :: !statuses;
            Mutex.unlock statuses_m;
            Atomic.incr kill_done;
            go ()
          end
        in
        go ())
  in
  let kill_threads = List.init 2 (fun _ -> Thread.create kill_client ()) in
  (* let a few requests land, then kill shard 1 while the load runs —
     every request issued after this point sees a dead shard *)
  while Atomic.get kill_done < 8 do
    Thread.yield ()
  done;
  Server.stop srv1;
  Thread.join th1;
  Service.shutdown svc1;
  List.iter Thread.join kill_threads;
  let statuses = !statuses in
  let degraded =
    List.filter (fun (st, _, _) -> st = "shard-failure") statuses
  in
  if List.length statuses <> kill_total then begin
    Printf.eprintf "FAIL: %d/%d requests completed after the shard kill\n"
      (List.length statuses) kill_total;
    exit 1
  end;
  if degraded = [] then begin
    Printf.eprintf
      "FAIL: no request observed the killed shard as a typed shard-failure\n";
    exit 1
  end;
  List.iter
    (fun (st, ok_shards, n_graphs) ->
      match st with
      | "ok" -> ()
      | "shard-failure" ->
        if ok_shards <> 1 || n_graphs = 0 then begin
          Printf.eprintf
            "FAIL: degraded response carried %d shard(s), %d graph(s) — \
             expected partial results from the survivor\n"
            ok_shards n_graphs;
          exit 1
        end
      | st ->
        Printf.eprintf "FAIL: unexpected status %S after shard kill\n" st;
        exit 1)
    statuses;
  row "shard kill: %d/%d requests degraded to typed partial results\n"
    (List.length degraded) kill_total;
  (* teardown *)
  let shutdown_client addr =
    let c = Client.connect ~timeout:10.0 addr in
    (try ignore (Client.call c (Protocol.Shutdown { q_id = 0 }))
     with Gql_core.Error.E _ -> ());
    Client.close c
  in
  shutdown_client (sock "single");
  Server.stop srv_router;
  Thread.join th_router;
  shutdown_client (sock "shard0");
  Thread.join th_single;
  Thread.join th0;
  Service.shutdown svc_single;
  Service.shutdown svc0;
  let single_core_note = cores < 2 && speedup < 1.5 in
  emit_json "serve.load"
    (Json.Obj
       ([
          ( "workload",
            Json.Str
              "chem 3-chain selection, exhaustive, closed-loop 4-client load" );
          ("requests", Json.Int total);
          ("clients", Json.Int n_clients);
          ("graphs_returned", Json.Int (List.length r_single.Protocol.qr_graphs));
          ("single_qps", Json.Float qps_s);
          ("single_lat_p50_ms", Json.Float p50_s);
          ("single_lat_p95_ms", Json.Float p95_s);
          ("single_lat_p99_ms", Json.Float p99_s);
          ("sharded_qps", Json.Float qps_r);
          ("sharded_lat_p50_ms", Json.Float p50_r);
          ("sharded_lat_p95_ms", Json.Float p95_r);
          ("sharded_lat_p99_ms", Json.Float p99_r);
          ("speedup", Json.Float speedup);
          ("cores", Json.Int cores);
          ("degraded_requests", Json.Int (List.length degraded));
          ("threshold_speedup", Json.Float 1.5);
        ]
       @
       if single_core_note then
         [
           ( "note",
             Json.Str
               "single-core container: shard domains cannot run in parallel, \
                the 1.5x gate needs >= 2 cores and is asserted in CI" );
         ]
       else []));
  if cores >= 2 && speedup < 1.5 then begin
    Printf.eprintf "FAIL: 2-shard scatter-gather %.2fx < 1.5x single-shard\n"
      speedup;
    exit 1
  end;
  if single_core_note then
    row "note: single core — the >= 1.5x gate is asserted on multi-core CI\n"

(* ---------------------------------------------------------------------- *)
(* Materialized views: hot reads as lookups, O(delta) maintenance          *)

let views_bench () =
  let module Ast = Gql_core.Ast in
  let module Eval = Gql_core.Eval in
  let module Gql = Gql_core.Gql in
  let module View = Gql_exec.View in
  header "Materialized views: hot-query read vs re-evaluation";
  let n = scale 2_000 10_000 in
  (* alternating-label chain plus chords: every chain edge and every
     chord joins an A node to a B node, so the view below materializes
     one 2-node graph per edge *)
  let g0 =
    Graph.of_labeled
      ~labels:(Array.init n (fun i -> if i mod 2 = 0 then "A" else "B"))
      (List.init (n - 1) (fun i -> (i, i + 1))
      @ List.init (n / 7) (fun i -> (i * 7, (i * 7 + 3) mod n)))
  in
  let def =
    match
      Gql.parse_program
        {|for graph P { node a; node b; edge e (a, b); } exhaustive in doc("D")
          where P.a.label < P.b.label
          return graph { node P.a, P.b; edge ee (P.a, P.b); };|}
    with
    | [ Ast.Sflwr f ] -> f
    | _ -> assert false
  in
  let scratch docs =
    Eval.returned (Eval.run ~docs:[ ("D", docs) ] [ Ast.Sflwr def ])
  in
  let multiset gs =
    List.sort compare (List.map (fun g -> Format.asprintf "%a" Graph.pp g) gs)
  in
  let v = View.make ~name:"hot" ~materialized:true def in
  let (), t_seed = time (fun () -> View.attach v ~docs:[ g0 ]) in
  let n_reads = scale 20 50 in
  let answers = ref 0 in
  let (), t_read =
    time (fun () ->
        for _ = 1 to n_reads do
          answers := List.length (View.graphs v)
        done)
  in
  let last_scratch = ref [] in
  let (), t_reeval =
    time (fun () ->
        for _ = 1 to n_reads do
          last_scratch := scratch [ g0 ]
        done)
  in
  if multiset (View.graphs v) <> multiset !last_scratch then begin
    Printf.eprintf "FAIL: materialized read is not the re-evaluated result\n";
    exit 1
  end;
  let read_speedup = t_reeval /. Float.max t_read 1e-9 in
  row "%d-node source, %d answers per read, %d reads each side\n" n !answers
    n_reads;
  row "%-22s %14s\n" "side" "total (ms)";
  row "%-22s %14.3f\n" "materialized lookup" (ms t_read);
  row "%-22s %14.2f\n" "re-evaluation" (ms t_reeval);
  row "%-22s %14.2f\n" "one-time seeding" (ms t_seed);
  row "read speedup (re-evaluation / lookup): %.0fx (result sets multiset-equal)\n"
    read_speedup;
  if read_speedup < 10.0 then begin
    Printf.eprintf "FAIL: materialized read speedup %.1fx < 10x\n" read_speedup;
    exit 1
  end;
  header "Materialized views: O(delta) maintenance vs full re-materialization";
  let n_txns = scale 25 100 in
  (* precompute the DML trajectory so both sides replay identical
     (post-graph, delta) pairs — relabels flip edges in and out of the
     view, edge inserts add matches *)
  let trajectory =
    let cur = ref g0 in
    List.init n_txns (fun i ->
        let vtx = i * 2654435761 land 0x3FFFFFFF mod n in
        let op =
          if i mod 3 = 2 then
            Mutate.Add_edge
              { name = None; src = vtx; dst = (vtx + 11) mod n; tuple = Tuple.empty }
          else
            Mutate.Set_node
              {
                v = vtx;
                tuple =
                  Tuple.make
                    [ ("label", Value.Str (if i mod 2 = 0 then "B" else "A")) ];
              }
        in
        let after, delta = Mutate.apply ~r:1 !cur op in
        cur := after;
        (after, delta))
  in
  let refresh_side vw ?max_dirty_frac () =
    time (fun () ->
        List.iter
          (fun (after, delta) ->
            ignore
              (View.refresh vw ?max_dirty_frac ~docs:[ after ]
                 (View.Update { index = 0; new_graph = after; delta })))
          trajectory)
  in
  let vi = View.make ~name:"hot" ~materialized:true def in
  View.attach vi ~docs:[ g0 ];
  let (), t_incr = refresh_side vi () in
  let vf = View.make ~name:"hot" ~materialized:true def in
  View.attach vf ~docs:[ g0 ];
  (* max_dirty_frac 0 forces every refresh down the re-derivation path:
     exactly the drop-and-re-materialize strategy this PR replaces *)
  let (), t_full = refresh_side vf ~max_dirty_frac:0.0 () in
  let final = match List.rev trajectory with (g, _) :: _ -> g | [] -> g0 in
  let want = multiset (scratch [ final ]) in
  if multiset (View.graphs vi) <> want then begin
    Printf.eprintf "FAIL: incrementally maintained view diverged from scratch\n";
    exit 1
  end;
  if multiset (View.graphs vf) <> want then begin
    Printf.eprintf "FAIL: re-materialized view diverged from scratch\n";
    exit 1
  end;
  let incr_n, full_n = View.refreshes vi in
  let maint_speedup = t_full /. Float.max t_incr 1e-9 in
  row "%d single-op txns: %d O(delta) refreshes, %d fallbacks\n" n_txns incr_n
    full_n;
  row "%-22s %14s %14s\n" "maintenance" "total (ms)" "ms/txn";
  row "%-22s %14.2f %14.3f\n" "incremental" (ms t_incr)
    (ms t_incr /. float_of_int n_txns);
  row "%-22s %14.2f %14.3f\n" "re-materialize" (ms t_full)
    (ms t_full /. float_of_int n_txns);
  row
    "maintenance speedup (re-materialize / incremental): %.1fx (final \
     materializations multiset-equal)\n"
    maint_speedup;
  if maint_speedup < 3.0 then begin
    Printf.eprintf "FAIL: incremental maintenance speedup %.1fx < 3x\n"
      maint_speedup;
    exit 1
  end;
  emit_json "views"
    (Json.Obj
       [
         ( "workload",
           Json.Str
             "alternating-label chain + chords; ordered-edge view; trickle \
              DML of radius-1-local relabels and edge inserts" );
         ("source_nodes", Json.Int n);
         ("answers", Json.Int !answers);
         ("t_read_ms", Json.Float (ms t_read));
         ("t_reeval_ms", Json.Float (ms t_reeval));
         ("t_seed_ms", Json.Float (ms t_seed));
         ("read_speedup", Json.Float read_speedup);
         ("txns", Json.Int n_txns);
         ("incremental_refreshes", Json.Int incr_n);
         ("fallback_refreshes", Json.Int full_n);
         ("t_incremental_ms", Json.Float (ms t_incr));
         ("t_rematerialize_ms", Json.Float (ms t_full));
         ("maintenance_speedup", Json.Float maint_speedup);
       ])

let experiments =
  [
    ("fig4.20", fig_4_20);
    ("fig4.21", fig_4_21);
    ("fig4.22", fig_4_22);
    ("fig4.23", fig_4_23);
    ("ablation", ablation);
    ("collection", collection);
    ("parallel", parallel);
    ("storage", storage);
    ("budget", budget_overhead);
    ("obs", obs_overhead);
    ("exec", exec_service);
    ("adaptive", adaptive);
    ("write", write_path);
    ("paths", paths);
    ("serve", serve_bench);
    ("micro", micro);
    ("views", views_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--full" then begin
          full_mode := true;
          false
        end
        else true)
      args
  in
  (* --json FILE: dump per-figure timing summaries after the run *)
  let json_file = ref None in
  let rec strip_json = function
    | "--json" :: file :: rest ->
      json_file := Some file;
      strip_json rest
    | [ "--json" ] ->
      prerr_endline "--json requires a file argument";
      exit 2
    | a :: rest -> a :: strip_json rest
    | [] -> []
  in
  let args = strip_json args in
  let selected =
    match args with
    | [] -> experiments
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown experiment %s; available: %s\n" n
              (String.concat ", " (List.map fst experiments));
            exit 2)
        names
  in
  Printf.printf
    "GraphQL reproduction benchmarks (%s mode; pass --full for paper-scale counts)\n"
    (if !full_mode then "full" else "quick");
  List.iter
    (fun (name, f) ->
      let (), elapsed = time f in
      Printf.printf "[%s completed in %.1f s]\n%!" name elapsed)
    selected;
  match !json_file with
  | None -> ()
  | Some file ->
    Util.write_json ~mode:(if !full_mode then "full" else "quick") file;
    Printf.printf "[wrote %s]\n%!" file
