(* shared helpers for the experiment harness *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let ms s = s *. 1000.0

(* Latency percentile by nearest-rank over a sorted copy — the load
   harness reports p50/p95/p99 cells from this. *)
let percentile p = function
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let header fmt =
  Printf.ksprintf
    (fun s ->
      print_string ("\n=== " ^ s ^ " ===\n");
      flush stdout)
    fmt

let row fmt =
  Printf.ksprintf
    (fun s ->
      print_string s;
      flush stdout)
    fmt

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* --- JSON benchmark trajectory (--json FILE) --------------------------- *)

(* A minimal JSON value and printer: the harness has no JSON dependency
   and the BENCH_*.json files only need objects, arrays and numbers. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf indent v =
    let pad n = String.make n ' ' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* NaN/inf (e.g. a skipped step) have no JSON literal *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s -> Buffer.add_string buf ("\"" ^ escape s ^ "\"")
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf ("\n" ^ pad (indent + 2));
          write buf (indent + 2) item)
        items;
      Buffer.add_string buf ("\n" ^ pad indent ^ "]")
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf ("\n" ^ pad (indent + 2) ^ "\"" ^ escape k ^ "\": ");
          write buf (indent + 2) item)
        fields;
      Buffer.add_string buf ("\n" ^ pad indent ^ "}")

  let to_string v =
    let buf = Buffer.create 4096 in
    write buf 0 v;
    Buffer.add_char buf '\n';
    Buffer.contents buf
end

(* experiments append (name, summary) pairs as they run; [write_json]
   dumps them at exit when --json was given *)
let json_entries : (string * Json.t) list ref = ref []
let emit_json name v = json_entries := (name, v) :: !json_entries

let write_json ~mode file =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "gql-bench/v1");
        ("mode", Json.Str mode);
        ("experiments", Json.Obj (List.rev !json_entries));
      ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string doc);
  close_out oc

